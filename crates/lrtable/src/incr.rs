//! Incremental LALR table generation.
//!
//! Given a built [`LrTable`] (which retains its LR(0) automaton, LALR
//! lookahead sets and per-row construction byproducts) plus the
//! [`DeltaMap`] produced by [`Grammar::apply_delta`], [`LrTable::update`]
//! computes the table of the edited grammar while structurally reusing
//! everything the delta cannot have touched:
//!
//! 1. **Clean states.** An old state is *clean* when every item of its
//!    closure survives the delta and no item's dot sits before a changed
//!    nonterminal. A clean state's closure under the new grammar is
//!    exactly the production-remapped old closure — no closure
//!    recomputation, and its outgoing transition *symbols* are unchanged.
//! 2. **Canonical replay.** The new automaton is grown by replaying the
//!    exact worklist traversal of [`Lr0Automaton::build`] (same LIFO
//!    order, same sorted-symbol order, same kernel interning), except
//!    that clean states skip closure and GOTO-kernel computation: their
//!    successors' kernels are read off the old transition graph. Because
//!    the traversal order is identical, the updated automaton gets the
//!    **same state numbering** a from-scratch build would produce —
//!    making "action-for-action equivalent" checkable cell by cell with
//!    no state-isomorphism mapping.
//! 3. **Row reuse.** A clean state's ACTION row is reused verbatim
//!    (decode → remap shift targets and production ids → re-encode, no
//!    re-resolution) when every reduction's new LALR lookahead set equals
//!    its old one. Lookaheads are recomputed globally — the relational
//!    DeRemer–Pennello pass is a small fraction of a full build — and
//!    compared per row against the retained old sets.
//! 4. **Split-only terminal classes.** New equivalence classes refine the
//!    old ones: terminals sharing an old class stay together unless a
//!    *dirty* row distinguishes them. Reused rows are then transformable
//!    class-by-class from the old packed words; classes may end up finer
//!    than a from-scratch pack, which changes table size but never any
//!    `(state, terminal)` lookup result.
//!
//! Conflict reports, `%nonassoc` no-default flags, default reductions and
//! the Section 3.2 nonterminal-reduction lists are likewise reassembled
//! from per-row retained byproducts where the row is reused, and
//! recomputed only for dirty rows.

use crate::automaton::{Lr0Automaton, StateId};
use crate::item::{Item, ItemSet};
use crate::lalr::lalr_lookaheads;
use crate::packed::{
    arena_offset, class_id, nt_cell_word, PackedAction, PackedTables, NT_LEN_BITS, NT_LEN_MASK,
    NT_NONE, TAG_BITS,
};
use crate::table::{
    resolve_cell, Action, ConflictKind, ConflictReport, LrTable, RowMeta, TableBuildError,
    TableKind,
};
use std::collections::HashMap;
use wg_grammar::{
    DeltaMap, Grammar, GrammarAnalysis, NonTerminal, ProdId, Symbol, TermSet, Terminal,
};

/// Reuse metrics of one incremental table update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrStats {
    /// States in the updated automaton.
    pub states: usize,
    /// States whose closure was reused (remapped, not recomputed).
    pub states_reused: usize,
    /// States whose packed ACTION row was transformed from the old table
    /// instead of being rebuilt and re-resolved.
    pub rows_reused: usize,
    /// Whether the update fell back to a from-scratch build (SLR tables,
    /// or deltas that touch the augmented start production).
    pub full_rebuild: bool,
}

/// Remaps every item of `set` through the delta's production map. Only
/// valid when every item's production survives (clean states and their
/// kernels).
fn remap_set(set: &ItemSet, prod_map: &[Option<ProdId>]) -> ItemSet {
    ItemSet::new(
        set.items()
            .iter()
            .map(|it| Item {
                prod: prod_map[it.prod.index()].expect("every item of a remapped set survives"),
                dot: it.dot,
            })
            .collect(),
    )
}

/// Set equality across universes: `a` over the old terminal universe,
/// `b` over the (possibly larger) new one. Old terminal ids are stable,
/// so `a ⊆ b` plus equal cardinality is full equality.
fn same_termset(a: &TermSet, b: &TermSet) -> bool {
    a.len() == b.len() && a.iter().all(|t| b.contains(t))
}

/// Replay state for the canonical-traversal reconstruction.
struct ReplayCtx<'a> {
    new_g: &'a Grammar,
    old_auto: &'a Lr0Automaton,
    prod_map: &'a [Option<ProdId>],
    /// Remapped kernels of *clean* old states → their old ids.
    old_kernel_ix: &'a HashMap<ItemSet, StateId>,
    kernels: Vec<ItemSet>,
    closures: Vec<ItemSet>,
    index: HashMap<ItemSet, StateId>,
    /// Per new state: the clean old state it reuses, if any.
    old_of: Vec<Option<StateId>>,
    /// Per old state: the new state it became, if instantiated.
    old_to_new: Vec<Option<StateId>>,
    work: Vec<StateId>,
}

impl ReplayCtx<'_> {
    /// Interns `kernel`, creating (and scheduling) the state on first
    /// sight. A kernel matching a clean old state adopts its remapped
    /// closure; anything else pays the ordinary closure computation.
    fn intern(&mut self, kernel: ItemSet) -> StateId {
        if let Some(&id) = self.index.get(&kernel) {
            return id;
        }
        let id = StateId(self.kernels.len() as u32);
        self.kernels.push(kernel.clone());
        if let Some(&o) = self.old_kernel_ix.get(&kernel) {
            self.old_of.push(Some(o));
            self.closures
                .push(remap_set(self.old_auto.closure(o), self.prod_map));
            self.old_to_new[o.index()] = Some(id);
        } else {
            self.old_of.push(None);
            self.closures.push(kernel.closure(self.new_g));
        }
        self.index.insert(kernel, id);
        self.work.push(id);
        id
    }
}

impl LrTable {
    /// Incrementally updates this table to the grammar produced by
    /// [`Grammar::apply_delta`]: `old_g` is the grammar this table was
    /// built from, `new_g` and `map` are what `apply_delta` returned.
    ///
    /// The result is action-for-action equivalent to
    /// `LrTable::try_build(new_g, kind)` — same state numbering, same
    /// actions for every `(state, terminal)`, same GOTOs, default and
    /// nonterminal reductions, and the same conflict report — while
    /// reusing the closures and packed rows of every state the delta
    /// cannot reach. SLR tables (which retain no lookahead sets) and
    /// deltas removing the augmented start production fall back to a full
    /// rebuild, reported via [`IncrStats::full_rebuild`].
    ///
    /// # Errors
    ///
    /// Returns a [`TableBuildError`] when the new grammar is cyclic or a
    /// packed-encoding field overflows.
    pub fn update(
        &self,
        old_g: &Grammar,
        new_g: &Grammar,
        map: &DeltaMap,
    ) -> Result<(LrTable, IncrStats), TableBuildError> {
        debug_assert_eq!(map.prod_map.len(), old_g.num_productions());
        debug_assert_eq!(old_g.num_terminals(), self.num_terminals);

        let an = GrammarAnalysis::new(new_g);
        if let Some(&n) = an.cyclic_nonterminals(new_g).first() {
            return Err(TableBuildError::CyclicGrammar {
                nonterminal: new_g.nonterminal_name(n).to_string(),
            });
        }

        let augmented_survives = map.prod_map.first().copied().flatten() == Some(ProdId::AUGMENTED);
        let (Some(old_la), TableKind::Lalr, true) =
            (self.lookaheads.as_ref(), self.kind, augmented_survives)
        else {
            let table = LrTable::try_build_with_analysis(new_g, &an, self.kind)?;
            let stats = IncrStats {
                states: table.num_states(),
                states_reused: 0,
                rows_reused: 0,
                full_rebuild: true,
            };
            return Ok((table, stats));
        };

        // ---- 1. Classify old states: clean iff the delta cannot affect
        // the state's closure or its outgoing transition symbols.
        let old_auto = &self.automaton;
        let old_n = old_auto.num_states();
        let mut clean = vec![false; old_n];
        for (s, slot) in clean.iter_mut().enumerate() {
            let sid = StateId(s as u32);
            *slot = old_auto.closure(sid).items().iter().all(|it| {
                map.prod_map[it.prod.index()].is_some()
                    && match it.next_symbol(old_g) {
                        Some(Symbol::N(n)) => !map.is_changed(n),
                        _ => true,
                    }
            });
        }

        // Remapped kernels of clean states, for recognizing them when the
        // replay reaches their kernel from a dirty predecessor.
        let mut old_kernel_ix: HashMap<ItemSet, StateId> = HashMap::new();
        for (s, &is_clean) in clean.iter().enumerate() {
            if is_clean {
                let sid = StateId(s as u32);
                old_kernel_ix.insert(remap_set(old_auto.kernel(sid), &map.prod_map), sid);
            }
        }

        // ---- 2. Canonical replay: identical traversal (and therefore
        // identical state numbering) to `Lr0Automaton::build(new_g)`,
        // with closure and GOTO-kernel computation skipped wherever a
        // clean old state already knows the answer.
        let mut ctx = ReplayCtx {
            new_g,
            old_auto,
            prod_map: &map.prod_map,
            old_kernel_ix: &old_kernel_ix,
            kernels: Vec::new(),
            closures: Vec::new(),
            index: HashMap::new(),
            old_of: Vec::new(),
            old_to_new: vec![None; old_n],
            work: Vec::new(),
        };
        let start = ctx.intern(ItemSet::new(vec![Item::start(ProdId::AUGMENTED)]));
        debug_assert_eq!(start, StateId::START);

        let mut transitions: HashMap<(StateId, Symbol), StateId> = HashMap::new();
        while let Some(state) = ctx.work.pop() {
            let closure = ctx.closures[state.index()].clone();
            if let Some(s_old) = ctx.old_of[state.index()] {
                // Clean: same transition symbols as the old state, and
                // each successor's kernel is the remapped old kernel.
                let mut syms: Vec<Symbol> = closure
                    .items()
                    .iter()
                    .filter_map(|it| it.next_symbol(new_g))
                    .collect();
                syms.sort_unstable();
                syms.dedup();
                for sym in syms {
                    let t_old = old_auto
                        .goto(s_old, sym)
                        .expect("clean state keeps its transition symbols");
                    let target = match ctx.old_to_new[t_old.index()] {
                        Some(t) => t,
                        None => {
                            let kernel = remap_set(old_auto.kernel(t_old), &map.prod_map);
                            let t = ctx.intern(kernel);
                            ctx.old_to_new[t_old.index()] = Some(t);
                            t
                        }
                    };
                    transitions.insert((state, sym), target);
                }
            } else {
                // Dirty: derive successor kernels from the (fresh)
                // closure. Grouping the advanced items by symbol visits
                // symbols in the same sorted order `build` uses, without
                // `goto_kernel`'s per-symbol closure recomputation.
                let mut moves: Vec<(Symbol, Item)> = closure
                    .items()
                    .iter()
                    .filter_map(|it| it.next_symbol(new_g).map(|sym| (sym, it.advanced())))
                    .collect();
                moves.sort_unstable();
                let mut i = 0;
                while i < moves.len() {
                    let sym = moves[i].0;
                    let mut items = Vec::new();
                    while i < moves.len() && moves[i].0 == sym {
                        items.push(moves[i].1);
                        i += 1;
                    }
                    let target = ctx.intern(ItemSet::new(items));
                    transitions.insert((state, sym), target);
                }
            }
        }

        let ReplayCtx {
            kernels,
            closures,
            old_of,
            old_to_new,
            ..
        } = ctx;
        let n_new = kernels.len();
        let states_reused = old_of.iter().filter(|o| o.is_some()).count();

        // Per-state outgoing edges (order irrelevant: consumers index by
        // symbol, and at most one target exists per symbol).
        let mut out: Vec<Vec<(Symbol, StateId)>> = vec![Vec::new(); n_new];
        for (&(s, sym), &t) in &transitions {
            out[s.index()].push((sym, t));
        }
        let auto_new = Lr0Automaton::from_parts(kernels, closures, transitions);

        // ---- 3. Fresh lookaheads (cheap relative to automaton/packing),
        // then per-row comparison against the retained old sets decides
        // which clean rows are reusable verbatim.
        let la_new = lalr_lookaheads(new_g, &an, &auto_new);

        let mut inv_prod: Vec<Option<ProdId>> = vec![None; new_g.num_productions()];
        for (old_ix, m) in map.prod_map.iter().enumerate() {
            if let Some(p) = m {
                inv_prod[p.index()] = Some(ProdId::from_index(old_ix));
            }
        }
        let empty_old = TermSet::empty(old_g.num_terminals());
        let empty_new = TermSet::empty(new_g.num_terminals());
        let mut row_reused = vec![false; n_new];
        for (s, slot) in row_reused.iter_mut().enumerate() {
            let sid = StateId(s as u32);
            let Some(s_old) = old_of[s] else { continue };
            *slot = auto_new.closure(sid).items().iter().all(|item| {
                if !item.is_final(new_g) || item.prod == ProdId::AUGMENTED {
                    return true;
                }
                let old_prod = inv_prod[item.prod.index()]
                    .expect("a clean state reduces only by surviving productions");
                let la_n = la_new.get(&(sid, item.prod)).unwrap_or(&empty_new);
                let la_o = old_la.get(&(s_old, old_prod)).unwrap_or(&empty_old);
                same_termset(la_o, la_n)
            });
        }

        // ---- 4. Raw rows for dirty states only, replicating the
        // canonical build: shifts/accept from the transition graph,
        // reductions from the fresh lookaheads, then sort/dedup and the
        // static precedence filters, tracking per-row byproducts.
        let t_new = new_g.num_terminals();
        let t_old_count = old_g.num_terminals();
        let mut raw_rows: Vec<Option<Vec<Vec<Action>>>> = vec![None; n_new];
        let mut new_meta: Vec<RowMeta> = vec![RowMeta::default(); n_new];
        let mut new_no_default = vec![false; n_new];
        for s in 0..n_new {
            if row_reused[s] {
                let s_old = old_of[s].expect("reused rows map to clean old states");
                new_meta[s] = self.row_meta[s_old.index()].clone();
                new_no_default[s] = self.no_default[s_old.index()];
                continue;
            }
            let sid = StateId(s as u32);
            let mut row: Vec<Vec<Action>> = vec![Vec::new(); t_new];
            for &(sym, t) in &out[s] {
                match sym {
                    Symbol::T(term) if term.is_eof() => row[term.index()].push(Action::Accept),
                    Symbol::T(term) => row[term.index()].push(Action::Shift(t)),
                    Symbol::N(_) => {}
                }
            }
            for item in auto_new.closure(sid).items() {
                if !item.is_final(new_g) || item.prod == ProdId::AUGMENTED {
                    continue;
                }
                if let Some(la) = la_new.get(&(sid, item.prod)) {
                    for t in la.iter() {
                        row[t.index()].push(Action::Reduce(item.prod));
                    }
                }
            }
            let mut scratch = ConflictReport::default();
            let mut meta = RowMeta::default();
            for (t, cell) in row.iter_mut().enumerate() {
                cell.sort_unstable();
                cell.dedup();
                if cell.len() > 1
                    && resolve_cell(new_g, Terminal::from_index(t), cell, &mut scratch)
                {
                    new_no_default[s] = true;
                }
                if cell.len() > 1 {
                    let kind = if cell.iter().any(|a| matches!(a, Action::Shift(_))) {
                        ConflictKind::ShiftReduce
                    } else {
                        ConflictKind::ReduceReduce
                    };
                    meta.conflicts.push((Terminal::from_index(t), kind));
                }
            }
            meta.resolved_by_precedence = scratch.resolved_by_precedence as u32;
            meta.nonassoc_errors = scratch.nonassoc_errors as u32;
            new_meta[s] = meta;
            raw_rows[s] = Some(row);
        }

        // Global report: concatenate per-row byproducts in (state,
        // terminal) order — the order the canonical build emits.
        let mut conflicts = ConflictReport::default();
        for (s, meta) in new_meta.iter().enumerate() {
            conflicts.resolved_by_precedence += meta.resolved_by_precedence as usize;
            conflicts.nonassoc_errors += meta.nonassoc_errors as usize;
            for &(t, k) in &meta.conflicts {
                conflicts.remaining.push((StateId(s as u32), t, k));
            }
        }

        // ---- 5. Terminal classes: refine the old classes by the dirty
        // rows' column signatures. Same old class + identical cells in
        // every dirty row ⇒ identical cells in every row, so members can
        // keep sharing a column. New terminals (no old class) only group
        // among themselves; their cells in reused rows are always empty —
        // a clean state's items never mention a new symbol, and a
        // reduction on a new terminal would have changed the row's
        // lookaheads, dirtying it.
        let old_pk = &self.packed;
        let dirty: Vec<usize> = (0..n_new).filter(|&s| !row_reused[s]).collect();
        let mut term_class = vec![0u16; t_new];
        let mut class_rep: Vec<usize> = Vec::new();
        {
            let mut seen: HashMap<(Option<u16>, Vec<&[Action]>), u16> = HashMap::new();
            for (t, tc) in term_class.iter_mut().enumerate() {
                let old_c = (t < t_old_count).then(|| old_pk.term_class[t]);
                let sig: Vec<&[Action]> = dirty
                    .iter()
                    .map(|&s| raw_rows[s].as_ref().expect("dirty row present")[t].as_slice())
                    .collect();
                let next = class_id(class_rep.len())?;
                let class = *seen.entry((old_c, sig)).or_insert(next);
                if class == next {
                    class_rep.push(t);
                }
                *tc = class;
            }
        }
        let num_classes = class_rep.len();
        let mut class_size = vec![0usize; num_classes];
        for &c in &term_class {
            class_size[c as usize] += 1;
        }

        // ---- 6. Cells, arena, default reductions. Dirty rows pack from
        // their raw cells exactly as `PackedTables::pack` would; reused
        // rows transform the old packed words: decode, remap shift
        // targets and production ids, re-encode. Equal precedence inputs
        // make re-resolution unnecessary.
        let remap_action = |a: Action| -> Action {
            match a {
                Action::Shift(t) => Action::Shift(
                    old_to_new[t.index()].expect("shift target of a reused row is instantiated"),
                ),
                Action::Reduce(p) => Action::Reduce(
                    map.prod_map[p.index()].expect("reduction of a reused row survives"),
                ),
                Action::Accept => Action::Accept,
            }
        };

        let mut cells = vec![0u32; n_new * num_classes];
        let mut arena = vec![0u32]; // pad: offset 0 is never a real cell
        let mut default_reduce = vec![0u32; n_new];
        let mut action_entries = 0usize;
        for s in 0..n_new {
            if let Some(row) = &raw_rows[s] {
                for (c, &rep) in class_rep.iter().enumerate() {
                    let cell = &row[rep];
                    cells[s * num_classes + c] = match cell.len() {
                        0 => 0,
                        1 => PackedAction::try_encode(cell[0])?.0,
                        n => {
                            let off = arena_offset(arena.len())?;
                            arena.push(n as u32);
                            for &a in cell {
                                arena.push(PackedAction::try_encode(a)?.0);
                            }
                            off
                        }
                    };
                }
                action_entries += row.iter().map(|c| c.len()).sum::<usize>();
                if !new_no_default[s] {
                    let mut agreed: Option<ProdId> = None;
                    let mut ok = true;
                    for &rep in &class_rep {
                        match row[rep].as_slice() {
                            [] => {}
                            [Action::Reduce(p)] if new_g.production(*p).arity() > 0 => match agreed
                            {
                                None => agreed = Some(*p),
                                Some(prev) if prev == *p => {}
                                Some(_) => {
                                    ok = false;
                                    break;
                                }
                            },
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        if let Some(p) = agreed {
                            default_reduce[s] = PackedAction::try_encode(Action::Reduce(p))?.0;
                        }
                    }
                }
            } else {
                let s_old = old_of[s]
                    .expect("reused rows map to clean old states")
                    .index();
                for (c, &rep) in class_rep.iter().enumerate() {
                    if rep >= t_old_count {
                        continue; // new-terminal column: empty in reused rows
                    }
                    let old_word =
                        old_pk.cells[s_old * old_pk.num_classes + old_pk.term_class[rep] as usize];
                    cells[s * num_classes + c] = if old_word == 0 {
                        0
                    } else if old_word >> TAG_BITS != 0 {
                        action_entries += class_size[c];
                        PackedAction::try_encode(remap_action(PackedAction(old_word).decode()))?.0
                    } else {
                        let off = old_word as usize;
                        let n = old_pk.arena[off] as usize;
                        let new_off = arena_offset(arena.len())?;
                        arena.push(n as u32);
                        for &w in &old_pk.arena[off + 1..off + 1 + n] {
                            arena.push(
                                PackedAction::try_encode(remap_action(PackedAction(w).decode()))?.0,
                            );
                        }
                        action_entries += n * class_size[c];
                        new_off
                    };
                }
                let w = old_pk.default_reduce[s_old];
                if w != 0 {
                    default_reduce[s] =
                        PackedAction::try_encode(remap_action(PackedAction(w).decode()))?.0;
                }
            }
        }

        // ---- 7. GOTO: reused rows remap the old packed words (new
        // nonterminal columns stay empty — clean states never transition
        // on new symbols); dirty rows read the fresh transition graph.
        let nn_new = new_g.num_nonterminals();
        let nn_old = old_g.num_nonterminals();
        let mut gotos = vec![0u32; n_new * nn_new];
        for s in 0..n_new {
            if raw_rows[s].is_none() {
                let s_old = old_of[s]
                    .expect("reused rows map to clean old states")
                    .index();
                for n in 0..nn_old {
                    let w = old_pk.gotos[s_old * nn_old + n];
                    if w != 0 {
                        let t = old_to_new[(w - 1) as usize]
                            .expect("goto target of a reused row is instantiated");
                        gotos[s * nn_new + n] = t.0 + 1;
                    }
                }
            } else {
                for &(sym, t) in &out[s] {
                    if let Symbol::N(n) = sym {
                        gotos[s * nn_new + n.index()] = t.0 + 1;
                    }
                }
            }
        }

        // ---- 8. Nonterminal reductions (Section 3.2). A reused row
        // copies (remaps) its old list for every nonterminal whose
        // nullability and FIRST set are unchanged; everything else is
        // recomputed by reading the freshly assembled packed cells — the
        // same inputs the canonical build reads.
        let old_an = GrammarAnalysis::new(old_g);
        let mut nt_same = vec![false; nn_new];
        for (n, slot) in nt_same.iter_mut().enumerate().take(nn_old) {
            let nt = NonTerminal::from_index(n);
            *slot = old_an.nullable(nt) == an.nullable(nt)
                && same_termset(old_an.first(nt), an.first(nt));
        }

        let reduce_list = |s: usize, t: Terminal, cells: &[u32], arena: &[u32]| -> Vec<ProdId> {
            let word = cells[s * num_classes + term_class[t.index()] as usize];
            if word == 0 {
                Vec::new()
            } else if word >> TAG_BITS != 0 {
                match PackedAction(word).decode() {
                    Action::Reduce(p) => vec![p],
                    _ => Vec::new(),
                }
            } else {
                let off = word as usize;
                let n = arena[off] as usize;
                arena[off + 1..off + 1 + n]
                    .iter()
                    .filter_map(|&w| match PackedAction(w).decode() {
                        Action::Reduce(p) => Some(p),
                        _ => None,
                    })
                    .collect()
            }
        };

        let mut nt_cells = vec![NT_NONE; n_new * nn_new];
        let mut nt_arena: Vec<ProdId> = Vec::new();
        for s in 0..n_new {
            for nix in 0..nn_new {
                if raw_rows[s].is_none() && nix < nn_old && nt_same[nix] {
                    let s_old = old_of[s]
                        .expect("reused rows map to clean old states")
                        .index();
                    let word = old_pk.nt_cells[s_old * nn_old + nix];
                    if word != NT_NONE {
                        let off = (word >> NT_LEN_BITS) as usize;
                        let len = (word & NT_LEN_MASK) as usize;
                        let new_word = nt_cell_word(nt_arena.len(), len)?;
                        for &p in &old_pk.nt_arena[off..off + len] {
                            nt_arena.push(
                                map.prod_map[p.index()]
                                    .expect("nt-reduction of a reused row survives"),
                            );
                        }
                        nt_cells[s * nn_new + nix] = new_word;
                    }
                    continue;
                }
                let n = NonTerminal::from_index(nix);
                if an.nullable(n) {
                    continue; // `provided that N does not generate ε`
                }
                let first = an.first(n);
                if first.is_empty() {
                    continue;
                }
                let mut agreed: Option<Vec<ProdId>> = None;
                let mut ok = true;
                for t in first.iter() {
                    let reduces = reduce_list(s, t, &cells, &arena);
                    match &agreed {
                        None => agreed = Some(reduces),
                        Some(prev) if *prev == reduces => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let list = agreed.unwrap_or_default();
                    let new_word = nt_cell_word(nt_arena.len(), list.len())?;
                    nt_arena.extend_from_slice(&list);
                    nt_cells[s * nn_new + nix] = new_word;
                }
            }
        }

        let rows_reused = row_reused.iter().filter(|&&r| r).count();
        let packed = PackedTables {
            num_classes,
            num_nonterminals: nn_new,
            term_class,
            cells,
            arena,
            default_reduce,
            gotos,
            nt_cells,
            nt_arena,
            action_entries,
        };
        let table = LrTable {
            kind: TableKind::Lalr,
            num_states: n_new,
            num_terminals: t_new,
            packed,
            conflicts,
            automaton: auto_new,
            lookaheads: Some(la_new),
            row_meta: new_meta,
            no_default: new_no_default,
        };
        Ok((
            table,
            IncrStats {
                states: n_new,
                states_reused,
                rows_reused,
                full_rebuild: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RefTable;
    use wg_grammar::{GrammarBuilder, GrammarDelta};

    /// Full-surface equivalence of an incrementally updated table against
    /// a from-scratch build of the same grammar: states, every ACTION
    /// cell, GOTOs, default reductions, nt-reductions, conflict report
    /// and entry counts.
    pub(crate) fn assert_matches_scratch(g: &Grammar, incr: &LrTable) {
        let scratch = LrTable::build(g, TableKind::Lalr);
        let reference = RefTable::build(g, TableKind::Lalr);
        assert_eq!(incr.num_states(), scratch.num_states(), "state count");
        for s in 0..scratch.num_states() {
            let sid = StateId(s as u32);
            assert_eq!(
                incr.automaton().kernel(sid),
                scratch.automaton().kernel(sid),
                "state {s} kernel (numbering must replay identically)"
            );
            for t in 0..g.num_terminals() {
                let term = Terminal::from_index(t);
                assert_eq!(
                    incr.actions(sid, term).to_vec(),
                    reference.actions(sid, term),
                    "actions at state {s}, terminal {t}"
                );
            }
            assert_eq!(
                incr.default_reduction(sid),
                scratch.default_reduction(sid),
                "default reduction at state {s}"
            );
            for n in g.nonterminals() {
                assert_eq!(incr.goto(sid, n), reference.goto(sid, n), "goto at {s}");
                assert_eq!(
                    incr.nt_reductions(sid, n),
                    reference.nt_reductions(sid, n),
                    "nt-reductions at state {s}"
                );
            }
        }
        assert_eq!(
            incr.conflicts().remaining,
            scratch.conflicts().remaining,
            "remaining conflicts"
        );
        assert_eq!(
            incr.conflicts().resolved_by_precedence,
            scratch.conflicts().resolved_by_precedence
        );
        assert_eq!(
            incr.conflicts().nonassoc_errors,
            scratch.conflicts().nonassoc_errors
        );
        assert_eq!(incr.num_action_entries(), reference.num_action_entries());
        // The retained intermediates must also match, so a chain of
        // updates stays usable as the base of the next update.
        assert_eq!(incr.no_default, scratch.no_default);
        for s in 0..scratch.num_states() {
            assert_eq!(
                incr.row_meta[s].conflicts, scratch.row_meta[s].conflicts,
                "row meta at state {s}"
            );
        }
    }

    fn dragon() -> Grammar {
        let mut b = GrammarBuilder::new("dragon");
        let plus = b.terminal("+");
        let star = b.terminal("*");
        let lp = b.terminal("(");
        let rp = b.terminal(")");
        let id = b.terminal("id");
        let e = b.nonterminal("E");
        let t = b.nonterminal("T");
        let f = b.nonterminal("F");
        b.prod(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(t)]);
        b.prod(e, vec![Symbol::N(t)]);
        b.prod(t, vec![Symbol::N(t), Symbol::T(star), Symbol::N(f)]);
        b.prod(t, vec![Symbol::N(f)]);
        b.prod(f, vec![Symbol::T(lp), Symbol::N(e), Symbol::T(rp)]);
        b.prod(f, vec![Symbol::T(id)]);
        b.start(e);
        b.build().unwrap()
    }

    #[test]
    fn add_production_to_leaf_nonterminal() {
        let g = dragon();
        let table = LrTable::build(&g, TableKind::Lalr);
        let mut d = GrammarDelta::new(&g);
        let num = d.add_terminal("num");
        let f = g.nonterminal_by_name("F").unwrap();
        d.add_production(f, vec![Symbol::T(num)]);
        let (new_g, map) = g.apply_delta(&d).unwrap();
        let (updated, stats) = table.update(&g, &new_g, &map).unwrap();
        assert!(!stats.full_rebuild);
        assert!(stats.states_reused > 0, "leaf edit must reuse states");
        assert_matches_scratch(&new_g, &updated);
    }

    #[test]
    fn remove_production() {
        let g = dragon();
        let table = LrTable::build(&g, TableKind::Lalr);
        let mut d = GrammarDelta::new(&g);
        // Remove E -> E + T; the grammar stays productive via E -> T.
        let e = g.nonterminal_by_name("E").unwrap();
        let (pid, _) = g
            .productions()
            .find(|(_, p)| p.lhs() == e && p.rhs().len() == 3 && p.rhs()[0] == Symbol::N(e))
            .unwrap();
        d.remove_production(pid);
        let (new_g, map) = g.apply_delta(&d).unwrap();
        let (updated, stats) = table.update(&g, &new_g, &map).unwrap();
        assert!(!stats.full_rebuild);
        assert_matches_scratch(&new_g, &updated);
    }

    #[test]
    fn chained_updates_stay_equivalent() {
        let g0 = dragon();
        let t0 = LrTable::build(&g0, TableKind::Lalr);
        let mut d1 = GrammarDelta::new(&g0);
        let num = d1.add_terminal("num");
        let f = g0.nonterminal_by_name("F").unwrap();
        d1.add_production(f, vec![Symbol::T(num)]);
        let (g1, m1) = g0.apply_delta(&d1).unwrap();
        let (t1, _) = t0.update(&g0, &g1, &m1).unwrap();
        assert_matches_scratch(&g1, &t1);

        // Second delta applied on top of the *updated* table.
        let mut d2 = GrammarDelta::new(&g1);
        let lb = d2.add_terminal("[");
        let rb = d2.add_terminal("]");
        let e = g1.nonterminal_by_name("E").unwrap();
        d2.add_production(f, vec![Symbol::T(lb), Symbol::N(e), Symbol::T(rb)]);
        let (g2, m2) = g1.apply_delta(&d2).unwrap();
        let (t2, stats) = t1.update(&g1, &g2, &m2).unwrap();
        assert!(!stats.full_rebuild);
        assert_matches_scratch(&g2, &t2);
    }

    #[test]
    fn slr_tables_fall_back_to_full_rebuild() {
        let g = dragon();
        let table = LrTable::build(&g, TableKind::Slr);
        let mut d = GrammarDelta::new(&g);
        let f = g.nonterminal_by_name("F").unwrap();
        let id = g.terminal_by_name("id").unwrap();
        d.add_production(f, vec![Symbol::T(id), Symbol::T(id)]);
        let (new_g, map) = g.apply_delta(&d).unwrap();
        let (updated, stats) = table.update(&g, &new_g, &map).unwrap();
        assert!(stats.full_rebuild);
        assert_eq!(updated.kind(), TableKind::Slr);
    }

    #[test]
    fn cyclic_delta_is_rejected() {
        let g = dragon();
        let table = LrTable::build(&g, TableKind::Lalr);
        let mut d = GrammarDelta::new(&g);
        let e = g.nonterminal_by_name("E").unwrap();
        d.add_production(e, vec![Symbol::N(e)]);
        let (new_g, map) = g.apply_delta(&d).unwrap();
        assert!(matches!(
            table.update(&g, &new_g, &map),
            Err(TableBuildError::CyclicGrammar { .. })
        ));
    }
}
