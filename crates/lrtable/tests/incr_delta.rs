//! Hand-written grammar-delta fixtures for the incremental table
//! generator: each scenario exercises one structural consequence of a
//! delta (state splits, orphaned states, ε-productions, new terminal
//! columns, conflict cells spilling into and out of the arena) and
//! asserts the incrementally updated table is action-for-action
//! equivalent to a from-scratch build of the edited grammar.

use wg_grammar::{Grammar, GrammarBuilder, GrammarDelta, NonTerminal, Symbol, Terminal};
use wg_lrtable::{Action, LrTable, RefTable, StateId, TableKind};

/// Full-surface equivalence of the incrementally updated `upd` against a
/// from-scratch build for `g`: same state numbering (kernel-for-kernel),
/// same ACTION cells, GOTOs, default reductions, nonterminal reductions,
/// conflict report and entry counts.
fn assert_matches_scratch(g: &Grammar, upd: &LrTable) {
    let scratch = LrTable::build(g, TableKind::Lalr);
    let naive = RefTable::build(g, TableKind::Lalr);
    assert_eq!(upd.num_states(), scratch.num_states(), "state count");
    for s in 0..scratch.num_states() {
        let sid = StateId(s as u32);
        assert_eq!(
            upd.automaton().kernel(sid),
            scratch.automaton().kernel(sid),
            "kernel of state {s}: replay must reproduce scratch numbering"
        );
        for t in 0..g.num_terminals() {
            let term = Terminal::from_index(t);
            assert_eq!(
                upd.actions(sid, term).to_vec(),
                naive.actions(sid, term),
                "ACTION mismatch at state {s}, terminal {t}"
            );
        }
        assert_eq!(
            upd.default_reduction(sid),
            scratch.default_reduction(sid),
            "default reduction at state {s}"
        );
        for nt in 0..g.num_nonterminals() {
            let n = NonTerminal::from_index(nt);
            assert_eq!(upd.goto(sid, n), naive.goto(sid, n), "GOTO at state {s}");
            assert_eq!(
                upd.nt_reductions(sid, n),
                naive.nt_reductions(sid, n),
                "nt-reductions at state {s}, nonterminal {nt}"
            );
        }
    }
    assert_eq!(upd.conflicts().remaining, scratch.conflicts().remaining);
    assert_eq!(
        upd.conflicts().resolved_by_precedence,
        scratch.conflicts().resolved_by_precedence
    );
    assert_eq!(
        upd.conflicts().nonassoc_errors,
        scratch.conflicts().nonassoc_errors
    );
    assert_eq!(upd.num_action_entries(), naive.num_action_entries());
    assert_eq!(upd.is_deterministic(), scratch.is_deterministic());
}

/// A statement-language grammar with enough breadth that leaf edits leave
/// most states untouched:
/// S -> S ; stmt-ish | stmt-ish, expressions with +/*, parens, id/num.
fn stmt_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("stmt");
    let semi = b.terminal(";");
    let assign = b.terminal("=");
    let plus = b.terminal("+");
    let star = b.terminal("*");
    let lp = b.terminal("(");
    let rp = b.terminal(")");
    let id = b.terminal("id");
    let num = b.terminal("num");
    let prog = b.nonterminal("Prog");
    let stmt = b.nonterminal("Stmt");
    let e = b.nonterminal("E");
    let t = b.nonterminal("T");
    let f = b.nonterminal("F");
    b.prod(
        prog,
        vec![Symbol::N(prog), Symbol::T(semi), Symbol::N(stmt)],
    );
    b.prod(prog, vec![Symbol::N(stmt)]);
    b.prod(stmt, vec![Symbol::T(id), Symbol::T(assign), Symbol::N(e)]);
    b.prod(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(t)]);
    b.prod(e, vec![Symbol::N(t)]);
    b.prod(t, vec![Symbol::N(t), Symbol::T(star), Symbol::N(f)]);
    b.prod(t, vec![Symbol::N(f)]);
    b.prod(f, vec![Symbol::T(lp), Symbol::N(e), Symbol::T(rp)]);
    b.prod(f, vec![Symbol::T(id)]);
    b.prod(f, vec![Symbol::T(num)]);
    b.start(prog);
    b.build().unwrap()
}

fn find_prod(g: &Grammar, lhs: &str, rhs_len: usize, first: Option<Symbol>) -> wg_grammar::ProdId {
    let n = g.nonterminal_by_name(lhs).unwrap();
    g.productions()
        .find(|(_, p)| {
            p.lhs() == n
                && p.rhs().len() == rhs_len
                && first.is_none_or(|sym| p.rhs().first() == Some(&sym))
        })
        .map(|(id, _)| id)
        .unwrap_or_else(|| panic!("no production {lhs} with arity {rhs_len}"))
}

/// Adding `F -> F ! ` splits the states containing `F`-predicting items:
/// their closures gain the new item, and a fresh successor state appears
/// behind the new `!` shift. States outside the expression sublanguage
/// (the statement spine) must be structurally reused.
#[test]
fn production_add_splits_predicting_states() {
    let g = stmt_grammar();
    let table = LrTable::build(&g, TableKind::Lalr);
    let mut d = GrammarDelta::new(&g);
    let bang = d.add_terminal("!");
    let f = g.nonterminal_by_name("F").unwrap();
    d.add_production(f, vec![Symbol::N(f), Symbol::T(bang)]);
    let (new_g, map) = g.apply_delta(&d).unwrap();
    let (upd, stats) = table.update(&g, &new_g, &map).unwrap();
    assert!(!stats.full_rebuild);
    assert!(
        upd.num_states() > table.num_states(),
        "postfix operator must add at least one state"
    );
    assert!(
        stats.states_reused > 0,
        "the statement spine must be reused: {stats:?}"
    );
    assert_matches_scratch(&new_g, &upd);
}

/// Removing `F -> ( E )` orphans the entire paren sub-automaton: every
/// state whose access path shifts `(` disappears, and the surviving
/// states renumber exactly as a scratch build would number them.
#[test]
fn production_remove_orphans_states() {
    let g = stmt_grammar();
    let table = LrTable::build(&g, TableKind::Lalr);
    let lp = g.terminal_by_name("(").unwrap();
    let mut d = GrammarDelta::new(&g);
    d.remove_production(find_prod(&g, "F", 3, Some(Symbol::T(lp))));
    let (new_g, map) = g.apply_delta(&d).unwrap();
    let (upd, stats) = table.update(&g, &new_g, &map).unwrap();
    assert!(!stats.full_rebuild);
    assert!(
        upd.num_states() < table.num_states(),
        "dropping parens must orphan states: {} -> {}",
        table.num_states(),
        upd.num_states()
    );
    // No surviving state may shift the now-unreachable `(`.
    for s in 0..upd.num_states() {
        assert!(
            upd.actions(StateId(s as u32), lp).is_empty(),
            "state {s} still shifts an orphaned terminal"
        );
    }
    assert_matches_scratch(&new_g, &upd);
}

/// Adding an ε-production to a fresh optional-marker nonterminal makes it
/// nullable, which reshapes FIRST/FOLLOW-adjacent decisions: states that
/// used to default-reduce must be rechecked (a nullable lookahead change
/// can forbid the default), and nt-reduction lists for the nullable
/// nonterminal must disappear (`provided that N does not generate ε`).
#[test]
fn epsilon_production_add_rechecks_default_reductions() {
    let g = stmt_grammar();
    let table = LrTable::build(&g, TableKind::Lalr);
    // Stmt -> id Opt = E with Opt -> ! | ε  (two chained deltas: first the
    // marker with a real body, then the ε-alternative flipping it nullable).
    let mut d1 = GrammarDelta::new(&g);
    let bang = d1.add_terminal("!");
    let opt = d1.add_nonterminal("Opt");
    let id = g.terminal_by_name("id").unwrap();
    let assign = g.terminal_by_name("=").unwrap();
    let e = g.nonterminal_by_name("E").unwrap();
    d1.add_production(opt, vec![Symbol::T(bang)]);
    d1.modify_production(
        find_prod(&g, "Stmt", 3, None),
        vec![
            Symbol::T(id),
            Symbol::N(opt),
            Symbol::T(assign),
            Symbol::N(e),
        ],
    );
    let (g1, m1) = g.apply_delta(&d1).unwrap();
    let (t1, s1) = table.update(&g, &g1, &m1).unwrap();
    assert!(!s1.full_rebuild);
    assert_matches_scratch(&g1, &t1);

    // Now the ε-alternative: Opt becomes nullable.
    let mut d2 = GrammarDelta::new(&g1);
    let opt = g1.nonterminal_by_name("Opt").unwrap();
    d2.add_production(opt, vec![]);
    let (g2, m2) = g1.apply_delta(&d2).unwrap();
    let (t2, s2) = t1.update(&g1, &g2, &m2).unwrap();
    assert!(!s2.full_rebuild);
    assert_matches_scratch(&g2, &t2);
    // The nullable marker must have no precomputed nt-reduction anywhere.
    for s in 0..t2.num_states() {
        assert_eq!(
            t2.nt_reductions(StateId(s as u32), opt),
            None,
            "nullable nonterminal kept an nt-reduction list at state {s}"
        );
    }
}

/// Adding a brand-new terminal grows the ACTION row width. Reused rows
/// must read as empty in the new column (a clean state can never mention
/// a symbol the old grammar lacked), while dirty rows shift it.
#[test]
fn new_terminal_grows_columns() {
    let g = stmt_grammar();
    let table = LrTable::build(&g, TableKind::Lalr);
    let mut d = GrammarDelta::new(&g);
    let query = d.add_terminal("?");
    let colon = d.add_terminal(":");
    let e = g.nonterminal_by_name("E").unwrap();
    let t = g.nonterminal_by_name("T").unwrap();
    // E -> E ? E : T — a conditional operator touching only E.
    d.add_production(
        e,
        vec![
            Symbol::N(e),
            Symbol::T(query),
            Symbol::N(e),
            Symbol::T(colon),
            Symbol::N(t),
        ],
    );
    let (new_g, map) = g.apply_delta(&d).unwrap();
    assert_eq!(new_g.num_terminals(), g.num_terminals() + 2);
    let (upd, stats) = table.update(&g, &new_g, &map).unwrap();
    assert!(!stats.full_rebuild);
    assert!(stats.states_reused > 0);
    // Some state actually shifts the new terminal...
    let shifts_query = (0..upd.num_states()).any(|s| {
        upd.actions(StateId(s as u32), query)
            .iter()
            .any(|a| matches!(a, Action::Shift(_)))
    });
    assert!(shifts_query, "the conditional operator must be shiftable");
    assert_matches_scratch(&new_g, &upd);
}

/// A delta that introduces a genuine shift/reduce conflict (cells spill
/// to the multi-action arena), then a second delta resolving it (cells
/// shrink back to inline words). The conflict report must track both
/// directions, and the conflicted table must match scratch cell-for-cell
/// including multi-action cell order.
#[test]
fn conflict_introduced_then_resolved() {
    let g = stmt_grammar();
    let t0 = LrTable::build(&g, TableKind::Lalr);
    assert!(t0.is_deterministic());

    // E -> E + E conflicts with E -> E + T on `+` lookahead.
    let mut d1 = GrammarDelta::new(&g);
    let plus = g.terminal_by_name("+").unwrap();
    let e = g.nonterminal_by_name("E").unwrap();
    d1.add_production(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(e)]);
    let (g1, m1) = g.apply_delta(&d1).unwrap();
    let (t1, s1) = t0.update(&g, &g1, &m1).unwrap();
    assert!(!s1.full_rebuild);
    assert!(
        t1.conflicts().has_conflicts(),
        "ambiguous alternative must surface conflicts"
    );
    // At least one cell carries multiple actions (arena spill).
    let spilled = (0..t1.num_states()).any(|s| t1.actions(StateId(s as u32), plus).len() > 1);
    assert!(spilled, "conflicted cells must hold every action");
    assert_matches_scratch(&g1, &t1);

    // Removing the ambiguous alternative resolves every conflict.
    let mut d2 = GrammarDelta::new(&g1);
    let ambiguous = g1
        .productions()
        .filter(|(_, p)| p.lhs() == e && p.rhs().len() == 3 && p.rhs()[2] == Symbol::N(e))
        .map(|(id, _)| id)
        .next()
        .expect("the ambiguous production exists");
    d2.remove_production(ambiguous);
    let (g2, m2) = g1.apply_delta(&d2).unwrap();
    let (t2, s2) = t1.update(&g1, &g2, &m2).unwrap();
    assert!(!s2.full_rebuild);
    assert!(t2.is_deterministic(), "conflict must unspill");
    assert_matches_scratch(&g2, &t2);
}

/// Precedence interactions: a delta adding a production whose conflicts
/// are statically filtered by existing %left declarations must reassemble
/// the resolved-by-precedence counters exactly.
#[test]
fn precedence_filtered_delta() {
    let mut b = GrammarBuilder::new("prec");
    let plus = b.terminal("+");
    let star = b.terminal("*");
    let num = b.terminal("num");
    b.left(&[plus]);
    b.left(&[star]);
    let e = b.nonterminal("E");
    b.prod(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(e)]);
    b.prod(e, vec![Symbol::T(num)]);
    b.start(e);
    let g = b.build().unwrap();
    let t0 = LrTable::build(&g, TableKind::Lalr);
    assert!(t0.is_deterministic());

    let mut d = GrammarDelta::new(&g);
    d.add_production(e, vec![Symbol::N(e), Symbol::T(star), Symbol::N(e)]);
    let (g1, m1) = g.apply_delta(&d).unwrap();
    let (t1, s1) = t0.update(&g, &g1, &m1).unwrap();
    assert!(!s1.full_rebuild);
    assert!(
        t1.is_deterministic(),
        "%left must statically filter the new operator's conflicts"
    );
    assert!(t1.conflicts().resolved_by_precedence > 0);
    assert_matches_scratch(&g1, &t1);
}

/// Reuse accounting: a leaf-level edit to the expression sublanguage must
/// reuse a meaningful fraction of states and rows (the tentpole's whole
/// point), not silently degrade into a rebuild-shaped update.
#[test]
fn leaf_edit_reuses_most_states() {
    let g = stmt_grammar();
    let table = LrTable::build(&g, TableKind::Lalr);
    let mut d = GrammarDelta::new(&g);
    let tru = d.add_terminal("true");
    let f = g.nonterminal_by_name("F").unwrap();
    d.add_production(f, vec![Symbol::T(tru)]);
    let (new_g, map) = g.apply_delta(&d).unwrap();
    let (upd, stats) = table.update(&g, &new_g, &map).unwrap();
    assert!(!stats.full_rebuild);
    assert!(
        stats.states_reused * 2 >= stats.states,
        "a new leaf alternative must reuse at least half the states: {stats:?}"
    );
    assert!(stats.rows_reused > 0, "some rows must be reused: {stats:?}");
    assert_matches_scratch(&new_g, &upd);
}
