//! Differential tests: the packed [`LrTable`] must be action-for-action
//! identical to the naive reference build ([`RefTable`]) — same actions in
//! every (state, terminal) cell including conflict cells, same GOTO
//! targets, same Section 3.2 nonterminal-reduction lists — for fixed
//! grammars exercising every table feature and for random small grammars.

use proptest::prelude::*;
use wg_grammar::{
    Grammar, GrammarAnalysis, GrammarBuilder, NonTerminal, SeqKind, Symbol, Terminal,
};
use wg_lrtable::{Action, LrTable, RefTable, StateId, TableBuildError, TableKind};

/// Asserts full equivalence of the packed and reference tables for `g`,
/// plus the internal consistency of the packed extras (default reductions,
/// equivalence classes, size metrics).
fn assert_equivalent(g: &Grammar, kind: TableKind) {
    let packed = LrTable::build(g, kind);
    let naive = RefTable::build(g, kind);
    assert_eq!(packed.num_states(), naive.num_states());
    assert_eq!(packed.num_action_entries(), naive.num_action_entries());

    for s in 0..packed.num_states() {
        let sid = StateId(s as u32);
        for t in 0..g.num_terminals() {
            let term = Terminal::from_index(t);
            let p = packed.actions(sid, term);
            let n = naive.actions(sid, term);
            assert_eq!(p.to_vec(), n, "ACTION mismatch at state {s}, terminal {t}");
            assert_eq!(p.len(), n.len());
            assert_eq!(p.is_empty(), n.is_empty());
            assert_eq!(p.first(), n.first().copied());
            for (i, &a) in n.iter().enumerate() {
                assert_eq!(p.get(i), a);
            }
        }
        for nt in 0..g.num_nonterminals() {
            let n_sym = NonTerminal::from_index(nt);
            assert_eq!(
                packed.goto(sid, n_sym),
                naive.goto(sid, n_sym),
                "GOTO mismatch at state {s}, nonterminal {nt}"
            );
            assert_eq!(
                packed.nt_reductions(sid, n_sym),
                naive.nt_reductions(sid, n_sym),
                "nt_reductions mismatch at state {s}, nonterminal {nt}"
            );
        }
        // Default reductions must agree with every nonempty cell of the
        // reference row and never name an ε-production.
        if let Some(p) = packed.default_reduction(sid) {
            assert!(g.production(p).arity() > 0);
            for t in 0..g.num_terminals() {
                let cell = naive.actions(sid, Terminal::from_index(t));
                assert!(
                    cell.is_empty() || cell == [Action::Reduce(p)],
                    "default-reduce disagrees with cell at state {s}, terminal {t}"
                );
            }
        }
    }

    let stats = packed.stats();
    assert_eq!(stats.states, packed.num_states());
    assert_eq!(stats.action_entries, naive.num_action_entries());
    assert!(stats.term_classes >= 1 && stats.term_classes <= g.num_terminals());
    assert!(stats.packed_bytes > 0);
}

#[test]
fn conflicted_expression_grammar_matches() {
    // E -> E + E | E * E | num: shift/reduce conflict cells must spill to
    // the arena and come back in the same order.
    let mut b = GrammarBuilder::new("amb");
    let plus = b.terminal("+");
    let star = b.terminal("*");
    let num = b.terminal("num");
    let e = b.nonterminal("E");
    b.prod(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(e)]);
    b.prod(e, vec![Symbol::N(e), Symbol::T(star), Symbol::N(e)]);
    b.prod(e, vec![Symbol::T(num)]);
    b.start(e);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Lalr);
    assert_equivalent(&g, TableKind::Slr);
    assert!(!LrTable::build(&g, TableKind::Lalr).is_deterministic());
}

#[test]
fn reduce_reduce_grammar_matches() {
    // Figure 7's LR(2) grammar: reduce/reduce on z.
    let mut b = GrammarBuilder::new("lr2");
    let x = b.terminal("x");
    let z = b.terminal("z");
    let c = b.terminal("c");
    let e = b.terminal("e");
    let a_nt = b.nonterminal("A");
    let b_nt = b.nonterminal("B");
    let d_nt = b.nonterminal("D");
    let u_nt = b.nonterminal("U");
    let v_nt = b.nonterminal("V");
    b.prod(a_nt, vec![Symbol::N(b_nt), Symbol::T(c)]);
    b.prod(a_nt, vec![Symbol::N(d_nt), Symbol::T(e)]);
    b.prod(b_nt, vec![Symbol::N(u_nt), Symbol::T(z)]);
    b.prod(d_nt, vec![Symbol::N(v_nt), Symbol::T(z)]);
    b.prod(u_nt, vec![Symbol::T(x)]);
    b.prod(v_nt, vec![Symbol::T(x)]);
    b.start(a_nt);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Lalr);
    assert_equivalent(&g, TableKind::Slr);
}

#[test]
fn epsilon_and_sequence_grammar_matches() {
    // ε-productions (nullable nonterminals) and sequence productions.
    let mut b = GrammarBuilder::new("eps-seq");
    let x = b.terminal("x");
    let semi = b.terminal(";");
    let s = b.nonterminal("S");
    let a_nt = b.nonterminal("A");
    let l = b.nonterminal("L");
    b.prod(s, vec![Symbol::N(a_nt), Symbol::N(l)]);
    b.prod(a_nt, vec![]);
    b.prod(a_nt, vec![Symbol::T(x)]);
    b.sequence(l, Symbol::T(semi), SeqKind::Plus, None);
    b.start(s);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Lalr);
    assert_equivalent(&g, TableKind::Slr);
}

#[test]
fn precedence_filtered_grammar_matches() {
    // Precedence declarations delete actions; the packed form must mirror
    // the post-filter cells exactly (including %nonassoc error cells).
    let mut b = GrammarBuilder::new("prec");
    let plus = b.terminal("+");
    let star = b.terminal("*");
    let lt = b.terminal("<");
    let num = b.terminal("num");
    b.nonassoc(&[lt]);
    b.left(&[plus]);
    b.left(&[star]);
    let e = b.nonterminal("E");
    b.prod(e, vec![Symbol::N(e), Symbol::T(lt), Symbol::N(e)]);
    b.prod(e, vec![Symbol::N(e), Symbol::T(plus), Symbol::N(e)]);
    b.prod(e, vec![Symbol::N(e), Symbol::T(star), Symbol::N(e)]);
    b.prod(e, vec![Symbol::T(num)]);
    b.start(e);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Lalr);
}

#[test]
fn slr_vs_lalr_difference_matches_per_kind() {
    // S -> L = R | R ; L -> * R | id ; R -> L: SLR conflicts, LALR doesn't
    // — both tables must match their own reference build.
    let mut b = GrammarBuilder::new("lalr-only");
    let eq = b.terminal("=");
    let star = b.terminal("*");
    let id = b.terminal("id");
    let s = b.nonterminal("S");
    let l = b.nonterminal("L");
    let r = b.nonterminal("R");
    b.prod(s, vec![Symbol::N(l), Symbol::T(eq), Symbol::N(r)]);
    b.prod(s, vec![Symbol::N(r)]);
    b.prod(l, vec![Symbol::T(star), Symbol::N(r)]);
    b.prod(l, vec![Symbol::T(id)]);
    b.prod(r, vec![Symbol::N(l)]);
    b.start(s);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Slr);
    assert_equivalent(&g, TableKind::Lalr);
}

#[test]
fn unused_terminal_columns_merge() {
    // Terminals that are never shifted and never appear in a lookahead set
    // have all-empty columns; the equivalence-class pass must collapse them
    // into one shared column. (Declared-but-unused terminals are common in
    // staged grammar development and in error-token conventions.)
    let mut b = GrammarBuilder::new("unused");
    let x = b.terminal("x");
    let _u1 = b.terminal("unused1");
    let _u2 = b.terminal("unused2");
    let _u3 = b.terminal("unused3");
    let s = b.nonterminal("S");
    b.prod(s, vec![Symbol::T(x)]);
    b.start(s);
    let g = b.build().unwrap();
    assert_equivalent(&g, TableKind::Lalr);
    let t = LrTable::build(&g, TableKind::Lalr);
    let stats = t.stats();
    assert!(
        stats.term_classes < g.num_terminals(),
        "three all-empty columns must share a class: {} classes for {} terminals",
        stats.term_classes,
        g.num_terminals()
    );
}

/// Builds a random small grammar from generated descriptors, or `None`
/// when the combination is rejected by the builder (e.g. unproductive
/// start symbol).
fn random_grammar(
    num_terms: usize,
    num_nts: usize,
    prods: &[(usize, Vec<(bool, usize)>)],
) -> Option<Grammar> {
    let mut b = GrammarBuilder::new("rand");
    let terms: Vec<_> = (0..num_terms)
        .map(|i| b.terminal(&format!("t{i}")))
        .collect();
    let nts: Vec<_> = (0..num_nts)
        .map(|i| b.nonterminal(&format!("N{i}")))
        .collect();
    for (lhs, rhs) in prods {
        let rhs: Vec<Symbol> = rhs
            .iter()
            .map(|&(is_term, i)| {
                if is_term {
                    Symbol::T(terms[i % num_terms])
                } else {
                    Symbol::N(nts[i % num_nts])
                }
            })
            .collect();
        b.prod(nts[lhs % num_nts], rhs);
    }
    b.start(nts[0]);
    b.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed ≡ naive over random small grammars, both table kinds.
    #[test]
    fn packed_matches_naive_on_random_grammars(
        num_terms in 1usize..5,
        num_nts in 1usize..4,
        prods in proptest::collection::vec(
            (0usize..4, proptest::collection::vec((any::<bool>(), 0usize..5), 0..4)),
            1..7,
        ),
    ) {
        let Some(g) = random_grammar(num_terms, num_nts, &prods) else {
            // Builder rejected the combination (no derivable start, …).
            return Ok(());
        };
        if !GrammarAnalysis::new(&g).cyclic_nonterminals(&g).is_empty() {
            // Cyclic grammars are refused by construction (structured
            // error, checked by `cyclic_grammar_is_refused` below).
            prop_assert!(matches!(
                LrTable::try_build(&g, TableKind::Lalr),
                Err(TableBuildError::CyclicGrammar { .. })
            ));
            return Ok(());
        }
        assert_equivalent(&g, TableKind::Lalr);
        assert_equivalent(&g, TableKind::Slr);
    }
}

#[test]
fn cyclic_grammar_is_refused() {
    // A -> A | x: infinitely ambiguous; table construction must return a
    // structured error instead of handing the GLR machinery a table it
    // can loop on forever.
    let mut b = GrammarBuilder::new("cyc");
    let x = b.terminal("x");
    let a = b.nonterminal("A");
    b.prod(a, vec![Symbol::N(a)]);
    b.prod(a, vec![Symbol::T(x)]);
    b.start(a);
    let g = b.build().unwrap();
    match LrTable::try_build(&g, TableKind::Lalr) {
        Err(TableBuildError::CyclicGrammar { nonterminal }) => assert_eq!(nonterminal, "A"),
        other => panic!("expected CyclicGrammar, got {other:?}"),
    }
}

#[test]
fn nonassoc_error_states_never_default_reduce() {
    // E -> E < E | num with %nonassoc <. The state for `E < E ·` reduces
    // by the same production on every *valid* lookahead but carries a
    // deliberate error cell at `<`; a default reduction would sail through
    // that error and accept `a < b < c`.
    let mut b = GrammarBuilder::new("na");
    let lt = b.terminal("<");
    let num = b.terminal("num");
    b.nonassoc(&[lt]);
    let e = b.nonterminal("E");
    b.prod(e, vec![Symbol::N(e), Symbol::T(lt), Symbol::N(e)]);
    b.prod(e, vec![Symbol::T(num)]);
    b.start(e);
    let g = b.build().unwrap();
    let t = LrTable::build(&g, TableKind::Lalr);
    let mut saw_nonassoc_state = false;
    for s in 0..t.num_states() {
        let sid = StateId(s as u32);
        let has_reduce = (0..g.num_terminals())
            .any(|i| !t.actions(sid, Terminal::from_index(i)).is_empty())
            && (0..g.num_terminals()).all(|i| {
                let c = t.actions(sid, Terminal::from_index(i));
                c.is_empty() || matches!(c.first(), Some(Action::Reduce(_)))
            });
        let lt_is_error = t.actions(sid, lt).is_empty();
        if has_reduce && lt_is_error && s != 0 {
            // Candidate `E < E ·` style state: uniform reduce everywhere
            // except the nonassoc error column.
            if t.automaton()
                .kernel(sid)
                .items()
                .iter()
                .any(|it| it.dot == 3 && it.is_final(&g))
            {
                saw_nonassoc_state = true;
                assert_eq!(
                    t.default_reduction(sid),
                    None,
                    "state {s} has a %nonassoc error cell and must consult lookahead"
                );
            }
        }
    }
    assert!(saw_nonassoc_state, "expected to find the E < E · state");
    // States without nonassoc damage still default-reduce: the grammar
    // keeps at least one ordinary default-reduce state (E -> num ·).
    let some_default =
        (0..t.num_states()).any(|s| t.default_reduction(StateId(s as u32)).is_some());
    assert!(some_default, "ordinary states must keep their defaults");
}
