//! Criterion benchmarks wrapping the kernels of every timing experiment in
//! the paper (the table binaries in `src/bin/` print the paper-shaped rows;
//! these give statistically solid per-kernel numbers).
//!
//! Groups:
//! * `batch_parse`   — S5a: deterministic vs IGLR vs batch GLR vs Earley on
//!   one token stream.
//! * `incremental`   — S5b: one self-cancelling token edit, deterministic vs
//!   IGLR sessions.
//! * `ambig_region`  — S5d: an edit inside vs outside an ambiguous region.
//! * `scaling`       — Section 3.4: mid-file edit at growing sizes, balanced
//!   sequences vs left recursion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wg_bench::{tokenize, DetSession};
use wg_core::{IglrParser, Session, SessionConfig};
use wg_dag::DagArena;
use wg_earley::EarleyParser;
use wg_glr::GlrParser;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::toys::stmt_list;
use wg_langs::{simp_c, simp_c_det};
use wg_lexer::LexerDef;
use wg_sentential::IncLrParser;

fn batch_parse(c: &mut Criterion) {
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(1_000, 0.0, 9));
    let tokens = tokenize(&cfg, &program.text);
    let pairs: Vec<(wg_grammar::Terminal, &str)> =
        tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();
    let terms: Vec<wg_grammar::Terminal> = tokens.iter().map(|(t, _)| *t).collect();

    let mut g = c.benchmark_group("batch_parse");
    g.sample_size(20);
    g.bench_function("deterministic", |b| {
        let p = IncLrParser::new(cfg.grammar(), cfg.table()).unwrap();
        b.iter(|| {
            let mut arena = DagArena::new();
            black_box(p.parse_tokens(&mut arena, pairs.iter().copied()).unwrap())
        })
    });
    g.bench_function("iglr", |b| {
        let p = IglrParser::new(cfg.grammar(), cfg.table());
        b.iter(|| {
            let mut arena = DagArena::new();
            black_box(p.parse_tokens(&mut arena, pairs.iter().copied()).unwrap())
        })
    });
    g.bench_function("batch_glr", |b| {
        let p = GlrParser::new(cfg.grammar(), cfg.table());
        b.iter(|| {
            let mut arena = DagArena::new();
            black_box(p.parse(&mut arena, pairs.iter().copied()).unwrap())
        })
    });
    g.bench_function("earley_recognize", |b| {
        let p = EarleyParser::new(cfg.grammar());
        b.iter(|| black_box(p.run(&terms)))
    });
    g.finish();
}

fn incremental(c: &mut Criterion) {
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(2_000, 0.0, 10));
    let site = program.text.find("var").expect("an identifier exists");

    let mut g = c.benchmark_group("incremental_edit");
    g.sample_size(30);
    g.bench_function("iglr_session", |b| {
        let mut s = Session::new(&cfg, &program.text).unwrap();
        b.iter(|| {
            s.edit(site, 3, "qqq");
            assert!(s.reparse().unwrap().incorporated);
            s.edit(site, 3, "var");
            assert!(s.reparse().unwrap().incorporated);
        })
    });
    g.bench_function("deterministic_session", |b| {
        let mut s = DetSession::new(&cfg, &program.text);
        b.iter(|| {
            s.edit_and_reparse(site, 3, "qqq").unwrap();
            s.edit_and_reparse(site, 3, "var").unwrap();
        })
    });
    g.finish();
}

fn ambig_region(c: &mut Criterion) {
    let cfg = simp_c();
    let program = c_program(&GenSpec::sized(1_500, 0.01, 21));
    let amb_site = program.text.find(" (obj").map(|p| p + 5).expect("site");
    let plain_site = program.text.find("var").expect("site");

    let mut g = c.benchmark_group("ambig_region_edit");
    g.sample_size(30);
    let mut s = Session::new(&cfg, &program.text).unwrap();
    g.bench_function("plain_statement", |b| {
        b.iter(|| {
            s.edit(plain_site, 2, "qq");
            assert!(s.reparse().unwrap().incorporated);
            s.edit(plain_site, 2, "va");
            assert!(s.reparse().unwrap().incorporated);
        })
    });
    g.bench_function("inside_ambiguous_region", |b| {
        b.iter(|| {
            s.edit(amb_site, 2, "qq");
            assert!(s.reparse().unwrap().incorporated);
            let restore = &program.text[amb_site..amb_site + 2];
            s.edit(amb_site, 2, restore);
            assert!(s.reparse().unwrap().incorporated);
        })
    });
    g.finish();
}

fn stmt_config(balanced: bool) -> SessionConfig {
    let g = stmt_list(balanced);
    let mut lx = LexerDef::new();
    lx.rule("id", "[a-zA-Z_][a-zA-Z0-9_]*").unwrap();
    lx.rule("num", "[0-9]+").unwrap();
    lx.literal("=", "=");
    lx.literal(";", ";");
    lx.skip("ws", "[ \\n\\t]+").unwrap();
    SessionConfig::new(g, lx).unwrap()
}

fn scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_mid_edit");
    g.sample_size(20);
    for n in [1024usize, 4096, 16384] {
        let text: String = (0..n).map(|i| format!("v{i} = {};\n", i % 89)).collect();
        for balanced in [true, false] {
            let cfg = stmt_config(balanced);
            let label = if balanced { "balanced" } else { "list" };
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let mut s = Session::new(&cfg, &text).unwrap();
                let mid = format!("v{}", n / 2);
                let pos = s.text().find(&format!("{mid} ")).unwrap();
                let len = mid.len();
                b.iter(|| {
                    s.edit(pos, len, "qqqqq");
                    assert!(s.reparse().unwrap().incorporated);
                    s.edit(pos, 5, &mid);
                    assert!(s.reparse().unwrap().incorporated);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, batch_parse, incremental, ambig_region, scaling);
criterion_main!(benches);
