//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::time::{Duration, Instant};
use wg_core::SessionConfig;
use wg_dag::{DagArena, FxHashMap, NodeId, NodeKind};
use wg_document::Edit;
use wg_lexer::TokenAt;
use wg_sentential::{IncLrParser, IncParseError, IncRunStats};

/// Times one closure invocation.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Times `iters` invocations, returning the mean duration.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters.max(1) as u32
}

/// Formats a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let n = d.as_nanos();
    if n < 10_000 {
        format!("{n} ns")
    } else if n < 10_000_000 {
        format!("{:.1} µs", n as f64 / 1_000.0)
    } else if n < 10_000_000_000 {
        format!("{:.1} ms", n as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", n as f64 / 1_000_000_000.0)
    }
}

/// Prints a header + aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// An analysis session for the **deterministic** incremental parser — the
/// same text/lexer/damage glue as `wg_core::Session`, driving
/// [`IncLrParser`] instead of IGLR, so the two parsers can be compared on
/// identical edit streams (the paper's Section 5 protocol).
pub struct DetSession<'a> {
    config: &'a SessionConfig,
    text: String,
    arena: DagArena,
    root: NodeId,
    tokens: Vec<TokenAt>,
    token_nodes: Vec<NodeId>,
    /// Parser effort of the last reparse.
    pub last_stats: IncRunStats,
}

impl<'a> DetSession<'a> {
    /// Lexes and batch-parses `text` with the deterministic parser.
    ///
    /// # Panics
    ///
    /// Panics if the text does not lex/parse or the table has conflicts
    /// (bench-internal setup errors).
    pub fn new(config: &'a SessionConfig, text: &str) -> DetSession<'a> {
        let out = config.lexer().lex(text);
        assert!(out.errors.is_empty(), "bench input must lex");
        let term_of = |tok: &TokenAt| {
            config
                .grammar()
                .terminal_by_name(config.lexer().rule_name(tok.rule))
                .expect("token maps to terminal")
        };
        let parser =
            IncLrParser::new(config.grammar(), config.table()).expect("deterministic table");
        let mut arena = DagArena::new();
        let pairs: Vec<(wg_grammar::Terminal, String)> = out
            .tokens
            .iter()
            .map(|t| (term_of(t), t.lexeme(text).to_string()))
            .collect();
        let root = parser
            .parse_tokens(&mut arena, pairs.iter().map(|(t, s)| (*t, s.as_str())))
            .expect("bench input must parse");
        // The tree's terminals, in yield order, are exactly the tokens.
        let token_nodes = collect_terminals(&arena, root);
        debug_assert_eq!(token_nodes.len(), out.tokens.len());
        DetSession {
            config,
            text: text.to_string(),
            arena,
            root,
            tokens: out.tokens,
            token_nodes,
            last_stats: IncRunStats::default(),
        }
    }

    /// Applies one edit and immediately reparses incrementally.
    ///
    /// # Errors
    ///
    /// Returns the parser error if the edited text no longer parses.
    pub fn edit_and_reparse(
        &mut self,
        start: usize,
        removed: usize,
        insert: &str,
    ) -> Result<(), IncParseError> {
        let edit = Edit {
            start,
            removed,
            inserted: insert.len(),
        };
        let mut new_text = self.text.clone();
        new_text.replace_range(start..start + removed, insert);
        let relex = self.config.lexer().relex(&new_text, &self.tokens, edit);
        assert!(relex.errors.is_empty(), "bench edits must lex");

        let mut new_nodes = Vec::with_capacity(relex.new_tokens.len());
        for tok in &relex.new_tokens {
            let term = self
                .config
                .grammar()
                .terminal_by_name(self.config.lexer().rule_name(tok.rule))
                .expect("token maps to terminal");
            new_nodes.push(self.arena.terminal(term, tok.lexeme(&new_text)));
        }
        let first_changed = relex.kept_prefix;
        let changed_end = self.tokens.len() - relex.kept_suffix;
        let mut replacements: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        let mut appended: Vec<NodeId> = Vec::new();
        let mut suffix_clone = None;
        if first_changed < changed_end {
            for (i, &node) in self.token_nodes[first_changed..changed_end]
                .iter()
                .enumerate()
            {
                self.arena.mark_changed(node);
                replacements.insert(
                    node,
                    if i == 0 {
                        new_nodes.clone()
                    } else {
                        Vec::new()
                    },
                );
            }
        } else if !new_nodes.is_empty() {
            if relex.kept_suffix > 0 {
                let anchor = self.token_nodes[self.tokens.len() - relex.kept_suffix];
                let clone = match self.arena.kind(anchor).clone() {
                    NodeKind::Terminal { term, lexeme } => self.arena.terminal(term, &lexeme),
                    _ => unreachable!(),
                };
                self.arena.mark_changed(anchor);
                let mut reps = new_nodes.clone();
                reps.push(clone);
                replacements.insert(anchor, reps);
                suffix_clone = Some(clone);
            } else {
                appended = new_nodes.clone();
            }
        }
        if first_changed > 0 {
            self.arena
                .mark_following(self.token_nodes[first_changed - 1]);
        }

        let parser = IncLrParser::new(self.config.grammar(), self.config.table())
            .expect("deterministic table");
        let result = parser.reparse(&mut self.arena, self.root, replacements, &appended);
        self.arena.clear_changes();
        let stats = result?;
        self.last_stats = stats;

        self.text = new_text;
        self.tokens = self
            .config
            .lexer()
            .apply_relex(&self.tokens, &relex, edit.delta());
        let mut nodes = Vec::with_capacity(relex.kept_prefix + new_nodes.len() + relex.kept_suffix);
        nodes.extend_from_slice(&self.token_nodes[..relex.kept_prefix]);
        nodes.extend_from_slice(&new_nodes);
        nodes.extend_from_slice(&self.token_nodes[self.token_nodes.len() - relex.kept_suffix..]);
        if let Some(clone) = suffix_clone {
            nodes[relex.kept_prefix + new_nodes.len()] = clone;
        }
        self.token_nodes = nodes;
        // Incremental reclamation: dead slots go onto the free list, every
        // live NodeId (root, token nodes) stays valid — no remap.
        if self.arena.should_collect() {
            self.arena.collect_garbage(self.root);
        }
        Ok(())
    }

    /// Current text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The dag arena.
    pub fn arena(&self) -> &DagArena {
        &self.arena
    }

    /// The super-root.
    pub fn root(&self) -> NodeId {
        self.root
    }
}

/// Terminal nodes of the current tree, in yield order.
pub fn collect_terminals(arena: &DagArena, root: NodeId) -> Vec<NodeId> {
    fn rec(a: &DagArena, n: NodeId, out: &mut Vec<NodeId>) {
        match a.kind(n) {
            NodeKind::Terminal { .. } => out.push(n),
            NodeKind::Bos | NodeKind::Eos => {}
            NodeKind::Symbol { .. } => rec(a, a.kids(n)[0], out),
            _ => {
                for &k in a.kids(n) {
                    rec(a, k, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    rec(arena, root, &mut out);
    out
}

/// One scripted textual edit of a workload stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditOp {
    /// Byte offset of the replaced range.
    pub start: usize,
    /// Bytes removed.
    pub removed: usize,
    /// Replacement text.
    pub insert: String,
}

/// A deterministic self-cancelling edit script over `text`: `count`
/// (mutate, restore) pairs at identifier sites chosen by `seed` — the
/// paper's Section 5 protocol, reusable across any number of documents.
///
/// Each pair restores the document byte-for-byte before the next pair
/// runs, so the precomputed offsets stay valid for the whole script and
/// identical scripts can be replayed against different parser stacks (or
/// different shards) for comparison.
pub fn self_cancelling_pairs(text: &str, count: usize, seed: u64) -> Vec<(EditOp, EditOp)> {
    wg_langs::generate::edit_sites(text, count, seed)
        .into_iter()
        .map(|(start, len)| {
            (
                EditOp {
                    start,
                    removed: len,
                    insert: "qqq".to_string(),
                },
                EditOp {
                    start,
                    removed: 3,
                    insert: text[start..start + len].to_string(),
                },
            )
        })
        .collect()
}

/// One document of a multi-document throughput workload.
#[derive(Debug, Clone)]
pub struct DocWorkload {
    /// Initial source text (parses with `simp_c_det`).
    pub text: String,
    /// The document's self-cancelling edit script.
    pub pairs: Vec<(EditOp, EditOp)>,
}

/// Generates `docs` independent documents of ~`lines` lines each with
/// `pairs` self-cancelling edit pairs per document. Every document gets a
/// distinct generator seed, so contents (and edit sites) differ while the
/// statistical shape matches — the sustained-editing workload of an
/// editor service with many open buffers.
pub fn doc_workloads(docs: usize, lines: usize, pairs: usize, seed: u64) -> Vec<DocWorkload> {
    use wg_langs::generate::{c_program, GenSpec};
    (0..docs)
        .map(|i| {
            let text = c_program(&GenSpec::sized(
                lines,
                0.0,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
            ))
            .text;
            let pairs = self_cancelling_pairs(&text, pairs, seed.wrapping_add(i as u64));
            DocWorkload { text, pairs }
        })
        .collect()
}

/// One operation of a read-mostly interactive stream (see
/// [`read_mostly_ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOp {
    /// Resolve the identifier at this byte offset (a `SemQuery::ResolveAt`).
    Query(usize),
    /// One self-cancelling (mutate, restore) edit pair.
    Pair(EditOp, EditOp),
}

/// A deterministic read-mostly operation stream over `text`: `ops`
/// operations of which every 20th is a self-cancelling edit pair and the
/// rest are identifier-site queries — the 95%-query / 5%-edit mix of an
/// IDE whose user is *reading* (hover, go-to-definition) far more than
/// typing. Pairs restore the text byte-for-byte, so all precomputed
/// offsets stay valid for the whole stream.
pub fn read_mostly_ops(text: &str, ops: usize, seed: u64) -> Vec<ReadOp> {
    read_mostly_ops_every(text, ops, seed, 20)
}

/// [`read_mostly_ops`] with an explicit edit period: every `period`-th
/// operation is a self-cancelling edit pair (period 20 = 5% edits,
/// period 10 = 10% edits). Same seed and same `ops` produce the same
/// sites, so halving the period doubles the edit rate while keeping the
/// query sites comparable — the knob the snapshot-isolation gate turns.
pub fn read_mostly_ops_every(text: &str, ops: usize, seed: u64, period: usize) -> Vec<ReadOp> {
    assert!(period >= 2, "a pure-edit stream is not read-mostly");
    let sites = wg_langs::generate::edit_sites(text, ops.max(1), seed);
    sites
        .iter()
        .enumerate()
        .map(|(i, &(start, len))| {
            if i % period == period / 2 - 1 {
                ReadOp::Pair(
                    EditOp {
                        start,
                        removed: len,
                        insert: "qqq".to_string(),
                    },
                    EditOp {
                        start,
                        removed: 3,
                        insert: text[start..start + len].to_string(),
                    },
                )
            } else {
                ReadOp::Query(start)
            }
        })
        .collect()
}

/// Tokenizes text against a session config (terminal, lexeme) — the input
/// shape the batch parsers take.
pub fn tokenize(config: &SessionConfig, text: &str) -> Vec<(wg_grammar::Terminal, String)> {
    let out = config.lexer().lex(text);
    assert!(out.errors.is_empty(), "bench input must lex");
    out.tokens
        .iter()
        .map(|t| {
            (
                config
                    .grammar()
                    .terminal_by_name(config.lexer().rule_name(t.rule))
                    .expect("token maps to terminal"),
                t.lexeme(text).to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_langs::simp_c_det;

    #[test]
    fn det_session_roundtrip() {
        let cfg = simp_c_det();
        let mut s = DetSession::new(&cfg, "int alpha; alpha = 1; int beta;");
        let pos = s.text().find("alpha;").unwrap();
        s.edit_and_reparse(pos, 5, "gamma").unwrap();
        assert!(s.text().contains("gamma"));
        assert!(s.last_stats.terminal_shifts > 0);
        // Self-cancelling round.
        let pos = s.text().find("gamma").unwrap();
        s.edit_and_reparse(pos, 5, "alpha").unwrap();
        assert_eq!(s.text(), "int alpha; alpha = 1; int beta;");
    }

    #[test]
    fn det_session_many_edits_bounded() {
        let cfg = simp_c_det();
        let src: String = (0..50).map(|i| format!("int v{i} = {i};")).collect();
        let mut s = DetSession::new(&cfg, &src);
        for _ in 0..40 {
            let pos = s.text().find("v25").unwrap();
            s.edit_and_reparse(pos, 3, "vxx").unwrap();
            let pos = s.text().find("vxx").unwrap();
            s.edit_and_reparse(pos, 3, "v25").unwrap();
        }
        assert!(s.arena().len() < 10_000);
    }

    #[test]
    fn workloads_are_deterministic_and_self_cancelling() {
        let loads = doc_workloads(3, 40, 5, 7);
        assert_eq!(loads.len(), 3);
        assert_ne!(loads[0].text, loads[1].text, "distinct seeds per document");
        let again = doc_workloads(3, 40, 5, 7);
        assert_eq!(loads[1].text, again[1].text);
        assert_eq!(loads[1].pairs, again[1].pairs);
        for w in &loads {
            assert_eq!(w.pairs.len(), 5);
            // Applying each (mutate, restore) pair leaves the text intact,
            // so every pair's precomputed offsets stay valid.
            let mut text = w.text.clone();
            for (a, b) in &w.pairs {
                for op in [a, b] {
                    text.replace_range(op.start..op.start + op.removed, &op.insert);
                }
                assert_eq!(text, w.text);
            }
            // And the documents parse with the deterministic C config.
            wg_core::Session::new(&simp_c_det(), &w.text).expect("workload parses");
        }
    }

    #[test]
    fn read_mostly_ops_are_deterministic_and_mostly_queries() {
        let text = wg_langs::generate::c_program(&wg_langs::generate::GenSpec::sized(40, 0.0, 7))
            .text
            .clone();
        let ops = read_mostly_ops(&text, 100, 11);
        assert_eq!(
            ops,
            read_mostly_ops(&text, 100, 11),
            "same seed, same script"
        );
        let pairs: Vec<_> = ops
            .iter()
            .filter_map(|op| match op {
                ReadOp::Pair(a, b) => Some((a, b)),
                ReadOp::Query(_) => None,
            })
            .collect();
        assert_eq!(pairs.len(), 5, "1 edit pair per 20 ops (95% reads)");
        // Each pair is self-cancelling: mutate then restore leaves the text
        // byte-identical, so precomputed offsets stay valid under replay.
        for (a, b) in pairs {
            let mut t = text.clone();
            t.replace_range(a.start..a.start + a.removed, &a.insert);
            t.replace_range(b.start..b.start + b.removed, &b.insert);
            assert_eq!(t, text);
        }
        for op in &ops {
            if let ReadOp::Query(at) = op {
                assert!(*at < text.len(), "query offsets stay in bounds");
            }
        }
        // Halving the period doubles the edit rate over the same sites.
        let doubled = read_mostly_ops_every(&text, 100, 11, 10);
        let doubled_pairs = doubled
            .iter()
            .filter(|op| matches!(op, ReadOp::Pair(..)))
            .count();
        assert_eq!(doubled_pairs, 10, "1 edit pair per 10 ops (90% reads)");
    }

    #[test]
    fn helpers() {
        assert!(fmt_dur(Duration::from_nanos(50)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(50)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(50)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(50)).contains("s"));
        let (v, d) = time_once(|| 42);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let m = time_mean(3, || {});
        assert!(m.as_nanos() < 1_000_000);
    }
}
