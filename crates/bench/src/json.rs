//! A minimal JSON reader for the bench baselines.
//!
//! The container has no registry access, so no `serde`: this is a small
//! recursive-descent parser covering exactly what the `BENCH_*.json`
//! files use (objects, arrays, numbers, strings, booleans, null) plus the
//! accessors the regression gate needs. Not a general-purpose JSON
//! library — no `\u` escapes, no scientific-notation writing — but it
//! round-trips everything our own `write_json` emitters produce.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; the baselines stay well under 2^53).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives/fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(self.err("unsupported escape")),
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so slicing on
                    // char boundaries is safe via the str view).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_shaped_documents() {
        let doc = r#"{
          "bench": "sec5_incremental",
          "quick": false,
          "scaling": [
            {"tokens": 713, "parse_ns": 8611, "ratio": 0.3841},
            {"tokens": 6960, "parse_ns": 8260, "ratio": -1.5}
          ],
          "note": null
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("sec5_incremental"));
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(false));
        let scaling = v.get("scaling").unwrap().as_arr().unwrap();
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[0].get("tokens").unwrap().as_u64(), Some(713));
        assert_eq!(scaling[0].get("parse_ns").unwrap().as_f64(), Some(8611.0));
        assert_eq!(scaling[1].get("ratio").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("note"), Some(&Json::Null));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn strings_with_escapes() {
        let v = Json::parse(r#""a\n\"b\"\\c""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\"\\c"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("truthy").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }
}
