//! **Section 3.3 ablation** — why the paper drives IGLR with LALR(1)
//! tables: they are far smaller than canonical LR(1), parse faster in
//! non-deterministic regions, and merge states with like cores, improving
//! incremental reuse. We compare SLR(1) and LALR(1) construction on the
//! workspace grammars: table size, conflicts (spurious SLR conflicts cause
//! extra parser forking), and batch IGLR parse effort driven by each.
//!
//! Also reports the **packed table representation**: for every workspace
//! grammar, the packed (tagged-u32 cells + shared conflict arena +
//! equivalence-classed columns + default reductions) size against the
//! naive cell-of-Vecs build, written to `BENCH_tables.json` for CI to
//! archive.
//!
//! And the **incremental table update**: for `simp_c` and the full-scale
//! C grammar, the median cost of deriving the new LALR automaton from a
//! single-production [`wg_grammar::GrammarDelta`] via [`LrTable::update`]
//! (reachability-seeded replay + structural state/row reuse) against a
//! from-scratch rebuild, plus the fraction of states reused. The
//! full-scale row carries hard floors: ≥ 80% of states reused and ≥ 5×
//! faster than the rebuild.
//!
//! Run: `cargo run --release -p wg-bench --bin tables`
//!
//! `--check-against <baseline.json>` turns the run into a regression
//! gate: the fresh incremental-update medians are compared against the
//! committed `BENCH_tables.json` and the process exits nonzero when one
//! slowed by more than `--tolerance <fraction>` (default 0.25).

use std::time::Instant;
use wg_bench::json::Json;
use wg_bench::{fmt_dur, print_table, time_once, tokenize};
use wg_core::IglrParser;
use wg_dag::DagArena;
use wg_grammar::{Grammar, GrammarDelta, Symbol};
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::{simp_c, simp_c_det, simp_cpp, simp_modula};
use wg_lrtable::{lr1_metrics, LrTable, RefTable, TableKind};

/// Baselines below this are timing noise on shared runners; reported but
/// never gated (same floor as the other bench gates).
const GATE_NOISE_FLOOR_NS: u64 = 2_000;

/// One grammar's packed-vs-naive measurement for `BENCH_tables.json`.
struct PackedRow {
    name: String,
    states: usize,
    terminals: usize,
    term_classes: usize,
    action_entries: usize,
    default_reduce_states: usize,
    spilled_cells: usize,
    packed_bytes: usize,
    naive_bytes: usize,
}

fn packed_report(grammars: &[(&str, wg_grammar::Grammar)]) -> Vec<PackedRow> {
    grammars
        .iter()
        .map(|(name, g)| {
            let table = LrTable::build(g, TableKind::Lalr);
            let naive = RefTable::build(g, TableKind::Lalr);
            let s = table.stats();
            PackedRow {
                name: name.to_string(),
                states: s.states,
                terminals: s.terminals,
                term_classes: s.term_classes,
                action_entries: s.action_entries,
                default_reduce_states: s.default_reduce_states,
                spilled_cells: s.spilled_cells,
                packed_bytes: s.packed_bytes,
                naive_bytes: naive.naive_bytes(),
            }
        })
        .collect()
}

/// One grammar's incremental-update measurement for `BENCH_tables.json`.
struct IncrRow {
    name: String,
    /// States in the post-delta automaton (median candidate).
    states: usize,
    /// States reused from the retained automaton (median candidate).
    states_reused: usize,
    /// Packed ACTION rows transformed instead of rebuilt.
    rows_reused: usize,
    /// Median ns of one [`LrTable::update`] over the candidate deltas,
    /// re-timed on the median candidate.
    update_ns: u64,
    /// Median ns of a from-scratch LALR build of the same post-delta
    /// grammar.
    rebuild_ns: u64,
    /// Single-production candidate deltas measured.
    candidates: usize,
}

fn median_ns(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Measures incremental table update for one grammar: a sweep of
/// single-production deltas (`X -> t` for a spread of non-start
/// nonterminals `X`), the median candidate re-timed against a
/// from-scratch rebuild of the same post-delta grammar.
fn incr_update_report(name: &str, g: &Grammar) -> IncrRow {
    let table = LrTable::build(g, TableKind::Lalr);
    let t0 = g.terminals().next().expect("grammar has terminals");
    let start = g.start();
    let nts: Vec<_> = g.nonterminals().filter(|&n| n != start).collect();
    let step = (nts.len() / 32).max(1);

    // One timed update per candidate; the median is robust against the
    // occasional scheduler hiccup even from single runs.
    let mut runs: Vec<(u64, Grammar, wg_grammar::DeltaMap)> = Vec::new();
    for &x in nts.iter().step_by(step).take(32) {
        let mut d = GrammarDelta::new(g);
        d.add_production(x, vec![Symbol::T(t0)]);
        let Ok((ng, map)) = g.apply_delta(&d) else {
            continue;
        };
        let t = Instant::now();
        let Ok((_, stats)) = table.update(g, &ng, &map) else {
            continue;
        };
        let ns = t.elapsed().as_nanos() as u64;
        if stats.full_rebuild {
            continue; // touches the start production; not the shape measured
        }
        runs.push((ns, ng, map));
    }
    assert!(
        !runs.is_empty(),
        "{name}: no single-production delta applied"
    );
    runs.sort_by_key(|r| r.0);
    let candidates = runs.len();
    let (_, ng, map) = &runs[candidates / 2];

    // Re-time the median candidate for the recorded (and gated) numbers.
    let mut samples = Vec::new();
    let mut stats = None;
    for _ in 0..9 {
        let t = Instant::now();
        let (_, s) = table.update(g, ng, map).expect("update succeeds");
        samples.push(t.elapsed().as_nanos() as u64);
        stats = Some(s);
    }
    let stats = stats.expect("timed at least one update");
    let update_ns = median_ns(samples);
    let rebuild_ns = median_ns(
        (0..5)
            .map(|_| {
                let t = Instant::now();
                let rebuilt = LrTable::build(ng, TableKind::Lalr);
                assert!(rebuilt.num_states() > 0);
                t.elapsed().as_nanos() as u64
            })
            .collect(),
    );
    IncrRow {
        name: name.to_string(),
        states: stats.states,
        states_reused: stats.states_reused,
        rows_reused: stats.rows_reused,
        update_ns,
        rebuild_ns,
        candidates,
    }
}

/// Hand-rolled JSON (the container has no serde): one row per grammar,
/// plus the incremental-update medians.
fn write_tables_json(path: &str, rows: &[PackedRow], incr: &[IncrRow]) {
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"tables\",\n  \"grammars\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"terminals\": {}, \"term_classes\": {}, \"action_entries\": {}, \"default_reduce_states\": {}, \"spilled_cells\": {}, \"packed_bytes\": {}, \"naive_bytes\": {}}}{}\n",
            r.name,
            r.states,
            r.terminals,
            r.term_classes,
            r.action_entries,
            r.default_reduce_states,
            r.spilled_cells,
            r.packed_bytes,
            r.naive_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n  \"incremental\": [\n");
    for (i, r) in incr.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"states_reused\": {}, \"rows_reused\": {}, \"update_ns\": {}, \"rebuild_ns\": {}, \"candidates\": {}}}{}\n",
            r.name,
            r.states,
            r.states_reused,
            r.rows_reused,
            r.update_ns,
            r.rebuild_ns,
            r.candidates,
            if i + 1 < incr.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// Compares fresh incremental-update medians against the committed
/// `BENCH_tables.json`; returns `false` when a gated row slowed past the
/// tolerance. Sub-noise-floor baselines are reported but never gated.
fn regression_gate(path: &str, baseline: &str, fresh: &[IncrRow], tolerance: f64) -> bool {
    let doc = match Json::parse(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("regression gate: {path} is not valid JSON: {e}");
            return false;
        }
    };
    let Some(rows) = doc.get("incremental").and_then(Json::as_arr) else {
        eprintln!("regression gate: {path} has no \"incremental\" array — stale baseline");
        return false;
    };
    println!(
        "\nregression gate vs {path} (tolerance +{:.0}%):",
        tolerance * 100.0
    );
    let mut ok = true;
    for r in fresh {
        let Some(base) = rows
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(&r.name))
        else {
            println!("  {}: no baseline row — skipped", r.name);
            continue;
        };
        let Some(base_ns) = base.get("update_ns").and_then(Json::as_u64) else {
            println!("  {}: baseline has no update_ns — skipped", r.name);
            continue;
        };
        let delta = (r.update_ns as f64 / (base_ns as f64).max(1.0) - 1.0) * 100.0;
        if base_ns < GATE_NOISE_FLOOR_NS {
            println!(
                "  {} update: {base_ns}ns -> {}ns ({delta:+.0}%) [sub-{}µs baseline, not gated]",
                r.name,
                r.update_ns,
                GATE_NOISE_FLOOR_NS / 1_000,
            );
            continue;
        }
        if delta > tolerance * 100.0 {
            eprintln!(
                "  {} update: {base_ns}ns -> {}ns ({delta:+.0}%) REGRESSION",
                r.name, r.update_ns
            );
            ok = false;
        } else {
            println!(
                "  {} update: {base_ns}ns -> {}ns ({delta:+.0}%) ok",
                r.name, r.update_ns
            );
        }
    }
    ok
}

fn main() {
    let mut check_against: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check-against" => {
                check_against = Some(it.next().expect("--check-against needs a path"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a fraction, e.g. 0.25");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    // Read the baseline up front: the gate may point at the very file this
    // run overwrites at the end.
    let baseline = check_against.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, text)
    });

    let grammars: Vec<(&str, wg_grammar::Grammar)> = vec![
        ("simp_c", simp_c().grammar().clone()),
        ("simp_cpp", simp_cpp().grammar().clone()),
        ("simp_c_det", simp_c_det().grammar().clone()),
        ("simp_modula", simp_modula().grammar().clone()),
        ("fig7 (LR2)", wg_langs::toys::fig7_lr2()),
        ("stmt_list", wg_langs::toys::stmt_list(true)),
        ("amb_expr", wg_langs::toys::ambiguous_expr(false)),
        ("parens", wg_langs::toys::nested_parens()),
        ("full_c", wg_langs::full_c().grammar().clone()),
    ];

    let mut rows = Vec::new();
    for (name, g) in &grammars {
        let slr = LrTable::build(g, TableKind::Slr);
        let lalr = LrTable::build(g, TableKind::Lalr);
        let lr1 = lr1_metrics(g);
        rows.push(vec![
            name.to_string(),
            format!("{}", lalr.num_states()),
            format!("{}", lr1.states),
            format!("{:.1}x", lr1.states as f64 / lalr.num_states() as f64),
            format!("{}", slr.conflicts().remaining.len()),
            format!("{}", lalr.conflicts().remaining.len()),
        ]);
    }
    print_table(
        "Section 3.3 — LALR(1) vs canonical LR(1) size, and conflicts",
        &[
            "grammar",
            "LALR states",
            "LR(1) states",
            "LR(1)/LALR",
            "SLR conflicts",
            "LALR conflicts",
        ],
        &rows,
    );

    // Drive the IGLR parser with each table kind over the same program.
    let cfg = simp_c();
    let program = c_program(&GenSpec::sized(2_000, 0.01, 3));
    let tokens = tokenize(&cfg, &program.text);
    let pairs: Vec<(wg_grammar::Terminal, &str)> =
        tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();

    let mut rows = Vec::new();
    for kind in [TableKind::Slr, TableKind::Lalr] {
        let table = LrTable::build(cfg.grammar(), kind);
        let parser = IglrParser::new(cfg.grammar(), &table);
        let mut arena = DagArena::new();
        let mut nondet = 0;
        let (_root, t) = time_once(|| {
            // parse_tokens hides stats; reparse path not needed here — use
            // a throwaway parse and read effort via a second stats run.
            parser
                .parse_tokens(&mut arena, pairs.iter().copied())
                .expect("parses")
        });
        // Re-run once more for the effort counters.
        let mut arena2 = DagArena::new();
        let root2 = parser
            .parse_tokens(&mut arena2, pairs.iter().copied())
            .expect("parses");
        let stats = wg_dag::DagStats::compute(&arena2, root2);
        nondet += stats.choice_points;
        rows.push(vec![
            format!("{kind}"),
            format!("{}", table.conflicts().remaining.len()),
            fmt_dur(t),
            format!("{}", nondet),
        ]);
    }
    print_table(
        "IGLR batch parse of a 2000-line C program, by table kind",
        &["table", "conflicts", "parse time", "choice points"],
        &rows,
    );
    println!(
        "\n(the resulting dags are identical — spurious SLR conflicts cost\n forking work, not extra ambiguity; LALR keeps non-determinism to the\n genuinely ambiguous cells, which is the paper's Section 3.3 argument)"
    );

    // Packed vs naive representation, per grammar.
    let packed = packed_report(&grammars);
    let rows: Vec<Vec<String>> = packed
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.states),
                format!("{}/{}", r.term_classes, r.terminals),
                format!("{}", r.action_entries),
                format!("{}", r.default_reduce_states),
                format!("{}", r.spilled_cells),
                format!("{}", r.packed_bytes),
                format!("{}", r.naive_bytes),
                format!("{:.2}x", r.naive_bytes as f64 / r.packed_bytes as f64),
            ]
        })
        .collect();
    print_table(
        "Packed table representation vs naive cell-of-Vecs (LALR)",
        &[
            "grammar",
            "states",
            "classes/terms",
            "entries",
            "def-reduce",
            "spilled",
            "packed B",
            "naive B",
            "shrink",
        ],
        &rows,
    );
    // Incremental table update vs from-scratch rebuild.
    let incr: Vec<IncrRow> = [
        ("simp_c", simp_c().grammar().clone()),
        ("full_c", wg_langs::full_c().grammar().clone()),
    ]
    .iter()
    .map(|(name, g)| incr_update_report(name, g))
    .collect();
    let rows: Vec<Vec<String>> = incr
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.candidates),
                fmt_dur(std::time::Duration::from_nanos(r.update_ns)),
                fmt_dur(std::time::Duration::from_nanos(r.rebuild_ns)),
                format!("{:.1}x", r.rebuild_ns as f64 / r.update_ns.max(1) as f64),
                format!(
                    "{}/{} ({:.0}%)",
                    r.states_reused,
                    r.states,
                    100.0 * r.states_reused as f64 / r.states.max(1) as f64
                ),
                format!("{}", r.rows_reused),
            ]
        })
        .collect();
    print_table(
        "Incremental LALR update (median single-production delta) vs rebuild",
        &[
            "grammar",
            "deltas",
            "update",
            "rebuild",
            "speedup",
            "states reused",
            "rows reused",
        ],
        &rows,
    );

    // Hard floors for the full-scale grammar: the incremental updater must
    // actually be incremental where it matters.
    let mut floors_ok = true;
    if let Some(r) = incr.iter().find(|r| r.name == "full_c") {
        let reuse = r.states_reused as f64 / r.states.max(1) as f64;
        let speedup = r.rebuild_ns as f64 / r.update_ns.max(1) as f64;
        if reuse < 0.80 {
            eprintln!(
                "FAIL: full_c single-production delta reused {:.0}% of states (floor 80%)",
                reuse * 100.0
            );
            floors_ok = false;
        }
        if speedup < 5.0 {
            eprintln!(
                "FAIL: full_c incremental update only {speedup:.1}x faster than rebuild (floor 5x)"
            );
            floors_ok = false;
        }
    }

    let gate_ok = match &baseline {
        Some((path, text)) => regression_gate(path, text, &incr, tolerance),
        None => true,
    };

    write_tables_json("BENCH_tables.json", &packed, &incr);
    if !floors_ok || !gate_ok {
        std::process::exit(1);
    }
}
