//! **Section 3.3 ablation** — why the paper drives IGLR with LALR(1)
//! tables: they are far smaller than canonical LR(1), parse faster in
//! non-deterministic regions, and merge states with like cores, improving
//! incremental reuse. We compare SLR(1) and LALR(1) construction on the
//! workspace grammars: table size, conflicts (spurious SLR conflicts cause
//! extra parser forking), and batch IGLR parse effort driven by each.
//!
//! Run: `cargo run --release -p wg-bench --bin tables`

use wg_bench::{fmt_dur, print_table, time_once, tokenize};
use wg_core::IglrParser;
use wg_dag::DagArena;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c;
use wg_lrtable::{lr1_metrics, LrTable, TableKind};

fn main() {
    let grammars: Vec<(&str, wg_grammar::Grammar)> = vec![
        ("simp_c", simp_c().grammar().clone()),
        ("fig7 (LR2)", wg_langs::toys::fig7_lr2()),
        ("stmt_list", wg_langs::toys::stmt_list(true)),
        ("amb_expr", wg_langs::toys::ambiguous_expr(false)),
        ("parens", wg_langs::toys::nested_parens()),
    ];

    let mut rows = Vec::new();
    for (name, g) in &grammars {
        let slr = LrTable::build(g, TableKind::Slr);
        let lalr = LrTable::build(g, TableKind::Lalr);
        let lr1 = lr1_metrics(g);
        rows.push(vec![
            name.to_string(),
            format!("{}", lalr.num_states()),
            format!("{}", lr1.states),
            format!("{:.1}x", lr1.states as f64 / lalr.num_states() as f64),
            format!("{}", slr.conflicts().remaining.len()),
            format!("{}", lalr.conflicts().remaining.len()),
        ]);
    }
    print_table(
        "Section 3.3 — LALR(1) vs canonical LR(1) size, and conflicts",
        &[
            "grammar",
            "LALR states",
            "LR(1) states",
            "LR(1)/LALR",
            "SLR conflicts",
            "LALR conflicts",
        ],
        &rows,
    );

    // Drive the IGLR parser with each table kind over the same program.
    let cfg = simp_c();
    let program = c_program(&GenSpec::sized(2_000, 0.01, 3));
    let tokens = tokenize(&cfg, &program.text);
    let pairs: Vec<(wg_grammar::Terminal, &str)> =
        tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();

    let mut rows = Vec::new();
    for kind in [TableKind::Slr, TableKind::Lalr] {
        let table = LrTable::build(cfg.grammar(), kind);
        let parser = IglrParser::new(cfg.grammar(), &table);
        let mut arena = DagArena::new();
        let mut nondet = 0;
        let (_root, t) = time_once(|| {
            // parse_tokens hides stats; reparse path not needed here — use
            // a throwaway parse and read effort via a second stats run.
            parser
                .parse_tokens(&mut arena, pairs.iter().copied())
                .expect("parses")
        });
        // Re-run once more for the effort counters.
        let mut arena2 = DagArena::new();
        let root2 = parser
            .parse_tokens(&mut arena2, pairs.iter().copied())
            .expect("parses");
        let stats = wg_dag::DagStats::compute(&arena2, root2);
        nondet += stats.choice_points;
        rows.push(vec![
            format!("{kind}"),
            format!("{}", table.conflicts().remaining.len()),
            fmt_dur(t),
            format!("{}", nondet),
        ]);
    }
    print_table(
        "IGLR batch parse of a 2000-line C program, by table kind",
        &["table", "conflicts", "parse time", "choice points"],
        &rows,
    );
    println!(
        "\n(the resulting dags are identical — spurious SLR conflicts cost\n forking work, not extra ambiguity; LALR keeps non-determinism to the\n genuinely ambiguous cells, which is the paper's Section 3.3 argument)"
    );
}
