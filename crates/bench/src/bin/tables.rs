//! **Section 3.3 ablation** — why the paper drives IGLR with LALR(1)
//! tables: they are far smaller than canonical LR(1), parse faster in
//! non-deterministic regions, and merge states with like cores, improving
//! incremental reuse. We compare SLR(1) and LALR(1) construction on the
//! workspace grammars: table size, conflicts (spurious SLR conflicts cause
//! extra parser forking), and batch IGLR parse effort driven by each.
//!
//! Also reports the **packed table representation**: for every workspace
//! grammar, the packed (tagged-u32 cells + shared conflict arena +
//! equivalence-classed columns + default reductions) size against the
//! naive cell-of-Vecs build, written to `BENCH_tables.json` for CI to
//! archive.
//!
//! Run: `cargo run --release -p wg-bench --bin tables`

use wg_bench::{fmt_dur, print_table, time_once, tokenize};
use wg_core::IglrParser;
use wg_dag::DagArena;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::{simp_c, simp_c_det, simp_cpp, simp_modula};
use wg_lrtable::{lr1_metrics, LrTable, RefTable, TableKind};

/// One grammar's packed-vs-naive measurement for `BENCH_tables.json`.
struct PackedRow {
    name: String,
    states: usize,
    terminals: usize,
    term_classes: usize,
    action_entries: usize,
    default_reduce_states: usize,
    spilled_cells: usize,
    packed_bytes: usize,
    naive_bytes: usize,
}

fn packed_report(grammars: &[(&str, wg_grammar::Grammar)]) -> Vec<PackedRow> {
    grammars
        .iter()
        .map(|(name, g)| {
            let table = LrTable::build(g, TableKind::Lalr);
            let naive = RefTable::build(g, TableKind::Lalr);
            let s = table.stats();
            PackedRow {
                name: name.to_string(),
                states: s.states,
                terminals: s.terminals,
                term_classes: s.term_classes,
                action_entries: s.action_entries,
                default_reduce_states: s.default_reduce_states,
                spilled_cells: s.spilled_cells,
                packed_bytes: s.packed_bytes,
                naive_bytes: naive.naive_bytes(),
            }
        })
        .collect()
}

/// Hand-rolled JSON (the container has no serde): one row per grammar.
fn write_tables_json(path: &str, rows: &[PackedRow]) {
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"tables\",\n  \"grammars\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"states\": {}, \"terminals\": {}, \"term_classes\": {}, \"action_entries\": {}, \"default_reduce_states\": {}, \"spilled_cells\": {}, \"packed_bytes\": {}, \"naive_bytes\": {}}}{}\n",
            r.name,
            r.states,
            r.terminals,
            r.term_classes,
            r.action_entries,
            r.default_reduce_states,
            r.spilled_cells,
            r.packed_bytes,
            r.naive_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

fn main() {
    let grammars: Vec<(&str, wg_grammar::Grammar)> = vec![
        ("simp_c", simp_c().grammar().clone()),
        ("simp_cpp", simp_cpp().grammar().clone()),
        ("simp_c_det", simp_c_det().grammar().clone()),
        ("simp_modula", simp_modula().grammar().clone()),
        ("fig7 (LR2)", wg_langs::toys::fig7_lr2()),
        ("stmt_list", wg_langs::toys::stmt_list(true)),
        ("amb_expr", wg_langs::toys::ambiguous_expr(false)),
        ("parens", wg_langs::toys::nested_parens()),
        ("full_c", wg_langs::full_c().grammar().clone()),
    ];

    let mut rows = Vec::new();
    for (name, g) in &grammars {
        let slr = LrTable::build(g, TableKind::Slr);
        let lalr = LrTable::build(g, TableKind::Lalr);
        let lr1 = lr1_metrics(g);
        rows.push(vec![
            name.to_string(),
            format!("{}", lalr.num_states()),
            format!("{}", lr1.states),
            format!("{:.1}x", lr1.states as f64 / lalr.num_states() as f64),
            format!("{}", slr.conflicts().remaining.len()),
            format!("{}", lalr.conflicts().remaining.len()),
        ]);
    }
    print_table(
        "Section 3.3 — LALR(1) vs canonical LR(1) size, and conflicts",
        &[
            "grammar",
            "LALR states",
            "LR(1) states",
            "LR(1)/LALR",
            "SLR conflicts",
            "LALR conflicts",
        ],
        &rows,
    );

    // Drive the IGLR parser with each table kind over the same program.
    let cfg = simp_c();
    let program = c_program(&GenSpec::sized(2_000, 0.01, 3));
    let tokens = tokenize(&cfg, &program.text);
    let pairs: Vec<(wg_grammar::Terminal, &str)> =
        tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();

    let mut rows = Vec::new();
    for kind in [TableKind::Slr, TableKind::Lalr] {
        let table = LrTable::build(cfg.grammar(), kind);
        let parser = IglrParser::new(cfg.grammar(), &table);
        let mut arena = DagArena::new();
        let mut nondet = 0;
        let (_root, t) = time_once(|| {
            // parse_tokens hides stats; reparse path not needed here — use
            // a throwaway parse and read effort via a second stats run.
            parser
                .parse_tokens(&mut arena, pairs.iter().copied())
                .expect("parses")
        });
        // Re-run once more for the effort counters.
        let mut arena2 = DagArena::new();
        let root2 = parser
            .parse_tokens(&mut arena2, pairs.iter().copied())
            .expect("parses");
        let stats = wg_dag::DagStats::compute(&arena2, root2);
        nondet += stats.choice_points;
        rows.push(vec![
            format!("{kind}"),
            format!("{}", table.conflicts().remaining.len()),
            fmt_dur(t),
            format!("{}", nondet),
        ]);
    }
    print_table(
        "IGLR batch parse of a 2000-line C program, by table kind",
        &["table", "conflicts", "parse time", "choice points"],
        &rows,
    );
    println!(
        "\n(the resulting dags are identical — spurious SLR conflicts cost\n forking work, not extra ambiguity; LALR keeps non-determinism to the\n genuinely ambiguous cells, which is the paper's Section 3.3 argument)"
    );

    // Packed vs naive representation, per grammar.
    let packed = packed_report(&grammars);
    let rows: Vec<Vec<String>> = packed
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.states),
                format!("{}/{}", r.term_classes, r.terminals),
                format!("{}", r.action_entries),
                format!("{}", r.default_reduce_states),
                format!("{}", r.spilled_cells),
                format!("{}", r.packed_bytes),
                format!("{}", r.naive_bytes),
                format!("{:.2}x", r.naive_bytes as f64 / r.packed_bytes as f64),
            ]
        })
        .collect();
    print_table(
        "Packed table representation vs naive cell-of-Vecs (LALR)",
        &[
            "grammar",
            "states",
            "classes/terms",
            "entries",
            "def-reduce",
            "spilled",
            "packed B",
            "naive B",
            "shrink",
        ],
        &rows,
    );
    write_tables_json("BENCH_tables.json", &packed);
}
