//! **Section 5, batch comparison** — the paper reports that an initial
//! (batch) parse with the IGLR parser is nearly as fast as the
//! deterministic parser: parsing per se was ~12% of analysis time for the
//! deterministic parser vs ~15% for IGLR, with most time going to node
//! construction. The typedef ambiguity is removed for this comparison, as
//! in the paper.
//!
//! We parse identical token streams with the deterministic incremental
//! parser (batch mode), the IGLR parser (batch mode), and the plain batch
//! GLR parser, and report total times plus the parse-vs-lex split.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_batch [lines]`

use wg_bench::{fmt_dur, print_table, time_once, tokenize};
use wg_core::IglrParser;
use wg_dag::DagArena;
use wg_glr::GlrParser;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c_det;
use wg_sentential::IncLrParser;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(lines, 0.0, 99));

    let (tokens, lex_time) = time_once(|| tokenize(&cfg, &program.text));
    let pairs: Vec<(wg_grammar::Terminal, &str)> =
        tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();

    let det = IncLrParser::new(cfg.grammar(), cfg.table()).expect("deterministic");
    let iglr = IglrParser::new(cfg.grammar(), cfg.table());
    let glr = GlrParser::new(cfg.grammar(), cfg.table());

    let (_r1, t_det) = time_once(|| {
        let mut arena = DagArena::new();
        det.parse_tokens(&mut arena, pairs.iter().copied())
            .expect("parses")
    });
    let (_r2, t_iglr) = time_once(|| {
        let mut arena = DagArena::new();
        iglr.parse_tokens(&mut arena, pairs.iter().copied())
            .expect("parses")
    });
    let (_r3, t_glr) = time_once(|| {
        let mut arena = DagArena::new();
        glr.parse(&mut arena, pairs.iter().copied())
            .expect("parses")
    });

    let per_tok =
        |t: std::time::Duration| format!("{:.0} ns", t.as_nanos() as f64 / tokens.len() as f64);
    let rows = vec![
        vec![
            "deterministic (state-matching)".into(),
            fmt_dur(t_det),
            per_tok(t_det),
        ],
        vec!["IGLR (batch mode)".into(), fmt_dur(t_iglr), per_tok(t_iglr)],
        vec!["batch GLR (Rekers)".into(), fmt_dur(t_glr), per_tok(t_glr)],
    ];
    print_table(
        "Section 5 — initial parse, typedef ambiguity removed",
        &["parser", "parse time", "per token"],
        &rows,
    );
    println!(
        "\ntokens: {}   lexing: {}   IGLR/deterministic parse-time ratio: {:.2}x",
        tokens.len(),
        fmt_dur(lex_time),
        t_iglr.as_secs_f64() / t_det.as_secs_f64()
    );
    println!(
        "(paper: parsing proper was 12% of total analysis time for the\n deterministic parser vs 15% for IGLR — an implied parse-time ratio of\n ~1.25x; in an environment, node construction and semantic analysis\n dominate and the GLR machinery is a rounding error)"
    );
}
