//! **Figure 4** — distribution of ambiguity across source files of one
//! large program (the paper shows gcc's files: most under 0.5% space
//! increase, a tail reaching ~1.2%).
//!
//! We simulate "gcc" as a suite of generated source files whose ambiguity
//! densities follow a skewed (front-loaded) distribution, then histogram the
//! *measured* per-file space increase exactly as the figure does.
//!
//! Run: `cargo run --release -p wg-bench --bin fig4 [files]`

use wg_core::Session;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c;

fn main() {
    let files: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let cfg = simp_c();

    // Skewed density profile: most files have little or no ambiguity.
    let mut overheads = Vec::with_capacity(files);
    for i in 0..files {
        let u = (i as f64 + 0.5) / files as f64;
        // Inverse-CDF of a front-loaded distribution with a thin tail.
        let rate = 0.012 * u * u * u;
        let program = c_program(&GenSpec {
            lines: 300 + (i % 7) * 100,
            ambiguity_rate: rate,
            typedef_rate: 0.02,
            funcdef_rate: 0.05,
            lit_call_rate: 0.2,
            seed: 0xF164 + i as u64,
        });
        let s = Session::new(&cfg, &program.text).expect("generated file parses");
        overheads.push(s.stats().space_overhead_percent());
    }

    // Histogram with the figure's 0.1%-wide buckets.
    let bucket_width = 0.1;
    let max = overheads.iter().cloned().fold(0.0f64, f64::max);
    let buckets = ((max / bucket_width).ceil() as usize + 1).max(12);
    let mut hist = vec![0usize; buckets];
    for &ov in &overheads {
        hist[(ov / bucket_width) as usize] += 1;
    }

    println!("\n== Figure 4 — ambiguity distribution by source file ({files} files) ==");
    println!("{:>12}  {:>5}  histogram", "% increase", "files");
    let scale = 60.0 / hist.iter().copied().max().unwrap_or(1) as f64;
    for (i, &count) in hist.iter().enumerate() {
        let lo = i as f64 * bucket_width;
        println!(
            "{:>5.1}-{:<5.1}  {:>5}  {}",
            lo,
            lo + bucket_width,
            count,
            "#".repeat((count as f64 * scale).ceil() as usize)
        );
    }
    let under_half = overheads.iter().filter(|&&o| o < 0.5).count();
    println!(
        "\n{under_half}/{files} files below 0.5% — the paper's shape: ambiguity is rare\nand localized, with a thin tail (max here {max:.2}%)."
    );
}
