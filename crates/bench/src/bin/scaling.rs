//! **Section 3.4 analysis** — incremental reparse time is O(t + s·lg N)
//! when associative sequences are represented as balanced trees, but
//! degrades toward O(N) with list-shaped (left-recursive) structure. This
//! is the ablation of the paper's central representation choice.
//!
//! We parse statement lists of growing size with (a) the sequence-declared
//! grammar and (b) the plain left-recursive grammar, apply a mid-file
//! self-cancelling edit, and report mean reparse latency and parser
//! operation counts.
//!
//! Run: `cargo run --release -p wg-bench --bin scaling`

use std::time::{Duration, Instant};
use wg_bench::{fmt_dur, print_table};
use wg_core::{Session, SessionConfig};
use wg_langs::toys::stmt_list;
use wg_lexer::LexerDef;

fn config(balanced: bool) -> SessionConfig {
    let g = stmt_list(balanced);
    let mut lx = LexerDef::new();
    lx.rule("id", "[a-zA-Z_][a-zA-Z0-9_]*").expect("valid");
    lx.rule("num", "[0-9]+").expect("valid");
    lx.literal("=", "=");
    lx.literal(";", ";");
    lx.skip("ws", "[ \\n\\t]+").expect("valid");
    SessionConfig::new(g, lx).expect("valid config")
}

fn program(n: usize) -> String {
    (0..n)
        .map(|i| format!("v{i} = {};", i % 97))
        .collect::<Vec<_>>()
        .join("\n")
}

fn measure(cfg: &SessionConfig, n: usize, rounds: usize) -> (Duration, usize) {
    let text = program(n);
    let mut s = Session::new(cfg, &text).expect("parses");
    // Edit the identifier of the middle statement.
    let mid = format!("v{}", n / 2);
    let pos = s.text().find(&format!("{mid} ")).expect("site exists");
    let len = mid.len();
    let mut total = Duration::ZERO;
    let mut ops = 0usize;
    for _ in 0..rounds {
        let t0 = Instant::now();
        s.edit(pos, len, "qqqqq");
        let out = s.reparse().expect("ok");
        assert!(out.incorporated);
        s.edit(pos, 5, &mid);
        let out2 = s.reparse().expect("ok");
        assert!(out2.incorporated);
        total += t0.elapsed();
        ops = out2.stats.terminal_shifts
            + out2.stats.subtree_shifts
            + out2.stats.run_shifts
            + out2.stats.reductions
            + out2.stats.breakdowns;
    }
    (total / (2 * rounds) as u32, ops)
}

fn main() {
    let balanced = config(true);
    let linear = config(false);
    let sizes = [512usize, 1024, 2048, 4096, 8192, 16384];
    let rounds = 20;

    let mut rows = Vec::new();
    let mut first_bal = None;
    let mut last_bal = None;
    let mut first_lin = None;
    let mut last_lin = None;
    for &n in &sizes {
        let (t_bal, ops_bal) = measure(&balanced, n, rounds);
        let (t_lin, ops_lin) = measure(&linear, n, rounds);
        first_bal.get_or_insert(t_bal);
        last_bal = Some(t_bal);
        first_lin.get_or_insert(t_lin);
        last_lin = Some(t_lin);
        rows.push(vec![
            format!("{n}"),
            fmt_dur(t_bal),
            format!("{ops_bal}"),
            fmt_dur(t_lin),
            format!("{ops_lin}"),
        ]);
    }
    print_table(
        "Section 3.4 — mid-file edit cost vs file size (balanced vs list)",
        &[
            "statements",
            "balanced reparse",
            "ops",
            "left-recursive reparse",
            "ops",
        ],
        &rows,
    );
    let growth = |a: Option<Duration>, b: Option<Duration>| {
        b.unwrap().as_secs_f64() / a.unwrap().as_secs_f64().max(1e-12)
    };
    println!(
        "\n32x size growth -> balanced cost x{:.1}, left-recursive cost x{:.1}",
        growth(first_bal, last_bal),
        growth(first_lin, last_lin)
    );
    println!(
        "(paper: balanced sequences give O(t + s·lg N) updates; lists degrade\n every incremental algorithm to linear)"
    );
}
