//! **Table 1** — space overhead of representing ambiguity, per program.
//!
//! The paper measures, for twelve C/C++ programs (SPEC95 plus gcc, emacs,
//! ensemble, idl, ghostscript, tcl), the extra space an abstract parse dag
//! needs over a fully disambiguated parse tree: 0.00%–0.52%. We synthesize
//! one program per row with the row's line count (scaled by `--scale`, the
//! first CLI argument; default 20) and an ambiguous-statement density
//! calibrated to the row's reported class, then *measure* the overhead on
//! the real dag.
//!
//! Run: `cargo run --release -p wg-bench --bin table1 [scale]`

use wg_bench::print_table;
use wg_core::Session;
use wg_dag::DagStats;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::{simp_c, simp_cpp};

/// (program, lines, language, paper %ov).
const ROWS: &[(&str, usize, &str, f64)] = &[
    ("compress", 1_934, "C", 0.21),
    ("gcc", 205_093, "C", 0.10),
    ("go", 29_246, "C", 0.00),
    ("ijpeg", 31_211, "C", 0.02),
    ("m88ksim", 19_915, "C", 0.02),
    ("perl", 26_871, "C", 0.01),
    ("vortex", 67_202, "C", 0.00),
    ("xlisp", 7_597, "C", 0.02),
    ("emacs 19.3", 159_921, "C", 0.47),
    ("ensemble", 294_204, "C++", 0.26),
    ("idl 1.3", 29_715, "C++", 0.10),
    ("ghostscript 3.33", 128_368, "C", 0.52),
    ("tcl 7.3", 26_738, "C", 0.31),
];

fn main() {
    let scale: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let c = simp_c();
    let cpp = simp_cpp();

    let mut rows = Vec::new();
    let mut mean_abs_err = 0.0;
    for (i, &(name, lines, lang, paper_ov)) in ROWS.iter().enumerate() {
        let scaled = (lines / scale).max(200);
        // Calibration: one ambiguous statement among k plain ones costs a
        // handful of extra nodes; density ≈ paper %ov scaled by the
        // per-item node count over the per-site overhead (~10/5).
        // (C++ sites carry nested call/cast choices, so each site costs
        // more nodes; the density multiplier reflects that.)
        let rate = (paper_ov / 100.0) * if lang == "C++" { 0.8 } else { 2.0 };
        // Under the simplified C++ grammar every literal-argument call is a
        // call-vs-cast choice point; keep those rare in C++ workloads so the
        // typedef-style sites dominate, as they do in real code.
        let lit_call_rate = if lang == "C++" { rate * 0.5 } else { 0.2 };
        let spec = GenSpec {
            lines: scaled,
            ambiguity_rate: rate,
            typedef_rate: 0.02,
            funcdef_rate: 0.05,
            lit_call_rate,
            seed: 0xA11CE + i as u64,
        };
        let program = c_program(&spec);
        let cfg = if lang == "C++" { &cpp } else { &c };
        let session = Session::new(cfg, &program.text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats: DagStats = session.stats();
        let measured = stats.space_overhead_percent();
        mean_abs_err += (measured - paper_ov).abs();
        rows.push(vec![
            name.to_string(),
            format!("{scaled}"),
            lang.to_string(),
            format!("{}", program.ambiguous_sites),
            format!("{}", stats.choice_points),
            format!("{:.2}", paper_ov),
            format!("{measured:.2}"),
        ]);
    }

    print_table(
        &format!("Table 1 — space overhead of explicit ambiguity (lines scaled 1/{scale})"),
        &[
            "program",
            "lines",
            "lang",
            "amb sites",
            "choice pts",
            "paper %ov",
            "measured %ov",
        ],
        &rows,
    );
    println!(
        "\nmean |measured - paper| = {:.3} percentage points over {} rows",
        mean_abs_err / ROWS.len() as f64,
        ROWS.len()
    );
    println!(
        "(shape check: every row stays well under 1% overhead, matching the\n paper's claim that explicit ambiguity is nearly free)"
    );
}
