//! **Section 5, incremental comparison** — the paper's protocol: apply
//! self-cancelling modifications to individual tokens, reparsing after each
//! change; the running-time difference between the deterministic parser and
//! the IGLR parser was "undetectable".
//!
//! We run identical edit scripts through both parsers (same lexer, same
//! damage computation) and report mean reparse latency, then sweep document
//! sizes to show per-edit cost — *including buffer mutation*, now that the
//! text lives in a chunked rope — stays flat. Every sweep size edits the
//! same statement shape at the same relative document position
//! ([`comparable_site`]), so the per-size numbers form a scaling curve
//! rather than comparing unrelated syntactic contexts. The scaling table is
//! also written to `BENCH_incremental.json` so CI can archive the
//! trajectory.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_incremental \
//!       [lines] [edits] [--quick] [--enforce-zero-alloc]`
//!
//! `--quick` shrinks the comparison document and the sweep's measurement
//! rounds for CI; the three sweep sizes are kept so the flatness claim is
//! still exercised. `--enforce-zero-alloc` additionally runs a warm
//! steady-state session and **fails the process** if any post-warm-up
//! reparse takes a fresh node slot or grows the merge tables' key storage —
//! the allocation-free hot path as a CI threshold.
//!
//! `--check-against <baseline.json>` turns the run into a **regression
//! gate**: the fresh per-stage scaling medians are compared against the
//! committed baseline (`BENCH_incremental.json` from a previous full run),
//! and the process fails if any gated stage slowed down by more than
//! `--tolerance <fraction>` (default 0.25). Stages whose baseline median
//! is under a small noise floor are reported but not gated — sub-µs
//! medians regress by 25% from scheduler jitter alone. A failing gate
//! re-measures once and compares the element-wise best medians, so a
//! transient load spike passes on retry while a real regression fails
//! both runs.

use std::time::Duration;
use wg_bench::json::Json;
use wg_bench::{fmt_dur, print_table, DetSession};
use wg_core::Session;
use wg_langs::generate::{c_program, comparable_site, edit_sites, full_c_program, GenSpec};
use wg_langs::{full_c, simp_c_det};

struct ScalingRow {
    tokens: usize,
    buffer: Duration,
    relex: Duration,
    parse: Duration,
    maintenance: Duration,
    sem: Duration,
    total: Duration,
    /// Fresh node slots over the measured rounds (0 once pools are warm).
    fresh_slots: u64,
    /// Node slots served from the free list over the measured rounds.
    recycled_slots: u64,
    /// Merge-table key-storage allocations over the measured rounds.
    key_allocs: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut enforce = false;
    let mut check_against: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--enforce-zero-alloc" => enforce = true,
            "--check-against" => {
                check_against = Some(it.next().expect("--check-against needs a path"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a fraction, e.g. 0.25");
            }
            other if !other.starts_with("--") => positional.push(a),
            other => panic!("unknown flag {other}"),
        }
    }
    let lines: usize = positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 800 } else { 4_000 });
    let edits: usize = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 40 } else { 200 });
    // Read the baseline up front: the gate may point at the very file this
    // run overwrites at the end.
    let baseline = check_against.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, text)
    });
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(lines, 0.0, 7));
    let sites = edit_sites(&program.text, edits, 11);

    // IGLR session.
    let mut iglr = Session::new(&cfg, &program.text).expect("parses");
    let mut t_iglr = Duration::ZERO;
    let mut iglr_ops = 0usize;
    for &(start, len) in &sites {
        let original = iglr.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        iglr.edit(start, len, "qqq");
        assert!(iglr.reparse().expect("no session error").incorporated);
        iglr.edit(start, 3, &original);
        let out = iglr.reparse().expect("no session error");
        assert!(out.incorporated);
        t_iglr += t0.elapsed();
        iglr_ops += out.stats.terminal_shifts
            + out.stats.subtree_shifts
            + out.stats.run_shifts
            + out.stats.reductions;
    }

    // Deterministic session, same script.
    let mut det = DetSession::new(&cfg, &program.text);
    let mut t_det = Duration::ZERO;
    let mut det_ops = 0usize;
    for &(start, len) in &sites {
        let original = det.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        det.edit_and_reparse(start, len, "qqq").expect("parses");
        det.edit_and_reparse(start, 3, &original).expect("parses");
        t_det += t0.elapsed();
        det_ops += det.last_stats.terminal_shifts
            + det.last_stats.subtree_shifts
            + det.last_stats.run_shifts
            + det.last_stats.reductions;
    }

    let per = |t: Duration| t / (2 * sites.len().max(1)) as u32;
    let rows = vec![
        vec![
            "deterministic".into(),
            fmt_dur(per(t_det)),
            format!("{}", det_ops / (2 * sites.len())),
        ],
        vec![
            "IGLR".into(),
            fmt_dur(per(t_iglr)),
            format!("{}", iglr_ops / (2 * sites.len())),
        ],
    ];
    print_table(
        "Section 5 — self-cancelling token edits (mean per reparse)",
        &["parser", "reparse latency", "parser ops (last edit)"],
        &rows,
    );
    let ratio = per(t_iglr).as_secs_f64() / per(t_det).as_secs_f64().max(1e-12);
    println!(
        "\n{} lines, {} edit pairs; IGLR/deterministic latency ratio {ratio:.2}x",
        lines,
        sites.len()
    );
    println!("(paper: \"the difference in running times ... was undetectable\")");

    let scaling = scaling_sweep(&cfg, quick);
    let scaling_full_c = scaling_sweep_full_c(quick);
    let zero_alloc_ok = if enforce {
        steady_state_zero_alloc_check(&cfg, quick)
    } else {
        true
    };
    let mut gate_ok = true;
    if let Some((path, text)) = baseline {
        gate_ok = regression_gate(&path, &text, &scaling, tolerance);
        if !gate_ok {
            // Anti-flake: a load spike on shared CI hardware inflates every
            // median at once. Re-measure once and gate on the element-wise
            // best of the two runs — a real regression fails both.
            println!("\nregression gate failed — re-measuring once to rule out transient load");
            let retry = scaling_sweep(&cfg, quick);
            let merged: Vec<ScalingRow> = scaling
                .iter()
                .zip(&retry)
                .map(|(a, b)| ScalingRow {
                    tokens: a.tokens,
                    buffer: a.buffer.min(b.buffer),
                    relex: a.relex.min(b.relex),
                    parse: a.parse.min(b.parse),
                    maintenance: a.maintenance.min(b.maintenance),
                    sem: a.sem.min(b.sem),
                    total: a.total.min(b.total),
                    fresh_slots: a.fresh_slots.min(b.fresh_slots),
                    recycled_slots: a.recycled_slots,
                    key_allocs: a.key_allocs.min(b.key_allocs),
                })
                .collect();
            gate_ok = regression_gate(&path, &text, &merged, tolerance);
        }
    }
    write_json(
        "BENCH_incremental.json",
        quick,
        lines,
        sites.len(),
        per(t_det),
        per(t_iglr),
        ratio,
        &scaling,
        &scaling_full_c,
    );
    if !zero_alloc_ok {
        eprintln!("FAIL: steady-state reparses still allocate (see above)");
    }
    if !gate_ok {
        eprintln!("FAIL: per-stage medians regressed past tolerance (see above)");
    }
    if !zero_alloc_ok || !gate_ok {
        std::process::exit(1);
    }
}

/// Baseline medians below this are jitter, not signal: a 25% band around a
/// few hundred nanoseconds is narrower than scheduler noise on shared CI
/// hardware, so such stages are reported but never fail the gate.
const GATE_NOISE_FLOOR_NS: u64 = 2_000;

/// Compares the fresh scaling medians against a committed
/// `BENCH_incremental.json` and returns `false` if any gated stage slowed
/// down by more than `tolerance` (a fraction: 0.25 = +25%).
fn regression_gate(path: &str, baseline: &str, fresh: &[ScalingRow], tolerance: f64) -> bool {
    let doc = match Json::parse(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("regression gate: {path} is not valid JSON: {e}");
            return false;
        }
    };
    let Some(rows) = doc.get("scaling").and_then(Json::as_arr) else {
        eprintln!("regression gate: {path} has no \"scaling\" array");
        return false;
    };
    println!(
        "\nregression gate vs {path} (tolerance +{:.0}%):",
        tolerance * 100.0
    );
    let mut ok = true;
    let mut gated = 0usize;
    for row in fresh {
        let Some(base) = rows
            .iter()
            .find(|r| r.get("tokens").and_then(Json::as_u64) == Some(row.tokens as u64))
        else {
            println!("  {} tokens: no baseline row — skipped", row.tokens);
            continue;
        };
        let stages: [(&str, &str, Duration); 6] = [
            ("buffer", "buffer_ns", row.buffer),
            ("relex", "relex_ns", row.relex),
            ("parse", "parse_ns", row.parse),
            ("maintenance", "maintenance_ns", row.maintenance),
            ("sem", "sem_ns", row.sem),
            ("total", "total_ns", row.total),
        ];
        for (name, key, now) in stages {
            let Some(base_ns) = base.get(key).and_then(Json::as_u64) else {
                println!(
                    "  {} tokens {name}: missing in baseline — skipped",
                    row.tokens
                );
                continue;
            };
            let now_ns = now.as_nanos() as u64;
            let delta = (now_ns as f64 / (base_ns as f64).max(1.0) - 1.0) * 100.0;
            if base_ns < GATE_NOISE_FLOOR_NS {
                println!(
                    "  {} tokens {name}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) [sub-{}µs baseline, not gated]",
                    row.tokens,
                    GATE_NOISE_FLOOR_NS / 1_000,
                );
                continue;
            }
            gated += 1;
            if delta > tolerance * 100.0 {
                eprintln!(
                    "  {} tokens {name}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) REGRESSION",
                    row.tokens
                );
                ok = false;
            } else {
                println!(
                    "  {} tokens {name}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) ok",
                    row.tokens
                );
            }
        }
    }
    if gated == 0 {
        eprintln!("regression gate: no stage cleared the noise floor — stale baseline?");
        return false;
    }
    ok
}

/// Per-edit reparse cost across document sizes: a single-token
/// self-cancelling edit in 1k/10k/100k-token documents. With shared
/// language artifacts, pooled parser scratch, the gap-buffered token tape,
/// damage-bounded relexing, and the rope-backed text buffer, every per-stage
/// timing from [`wg_core::ReparseReport`] — including `buffer`, the text
/// mutation itself — should stay flat as the document grows. Each size
/// edits the `var…` filler statement nearest the document midpoint, so the
/// measured context is the same shape at every size.
fn scaling_sweep(cfg: &wg_core::SessionConfig, quick: bool) -> Vec<ScalingRow> {
    scaling_sweep_with(
        cfg,
        quick,
        "Per-stage reparse cost vs document size (1-token edit)",
        &|lines| c_program(&GenSpec::sized(lines, 0.0, 7)).text,
        true,
    )
}

/// The same sweep over the full-scale C grammar (~440 productions, 1025
/// LALR states): documents from [`full_c_program`], no semantic pass (the
/// binding analysis is wired to the simplified grammar's shapes). The
/// interesting claim is identical — per-edit cost flat in document size —
/// now with a realistic table and a fork-bearing grammar.
fn scaling_sweep_full_c(quick: bool) -> Vec<ScalingRow> {
    let cfg = full_c();
    scaling_sweep_with(
        &cfg,
        quick,
        "Full-scale C — per-stage reparse cost vs document size (1-token edit)",
        &|lines| {
            let mut spec = GenSpec::sized(lines, 0.02, 7);
            spec.lit_call_rate = 0.15;
            full_c_program(&spec).text
        },
        false,
    )
}

fn scaling_sweep_with(
    cfg: &wg_core::SessionConfig,
    quick: bool,
    title: &str,
    gen_text: &dyn Fn(usize) -> String,
    with_sem: bool,
) -> Vec<ScalingRow> {
    use wg_core::ReparseReport;

    // Quick mode keeps the full warm-up and half the measurement rounds:
    // the sweep's cost is dominated by the three initial parses, and a
    // short-warmed median reads 15–25% high on the large document — enough
    // to trip the regression gate on its own.
    let (warmup, rounds) = if quick { (4, 16u32) } else { (4, 32u32) };
    let mut out = Vec::new();
    for &lines in &[150usize, 1_500, 15_000] {
        let text = gen_text(lines);
        let site = comparable_site(&text, 0.5).expect("generator emits var fillers");
        let mut s = Session::new(cfg, &text).expect("parses");
        // The semantic pass rides along so `sem` measures the damage-driven
        // incremental re-analysis (contour reuse + ripple cut-off), which
        // must stay as flat in document size as the parse itself.
        if with_sem {
            s.attach_semantics(Box::new(wg_sem::SemState::new(
                cfg.grammar(),
                wg_sem::Strictness::RequireBinding,
            )));
        }
        let tokens = s.token_count();
        let (start, len) = site;
        let original = s.text()[start..start + len].to_string();

        let run_pair = |s: &mut Session| -> (ReparseReport, ReparseReport) {
            s.edit(start, len, "qqq");
            let a = s.reparse().expect("no session error");
            assert!(a.incorporated);
            s.edit(start, 3, &original);
            let b = s.reparse().expect("no session error");
            assert!(b.incorporated);
            (a.report, b.report)
        };

        // Warm the pools, then measure. Per-stage statistics are *medians*
        // over the measured reparses: a single scheduler stall or GC cycle
        // inside the window shifts a mean arbitrarily, while the median
        // reads through it — the per-size numbers stay a scaling curve.
        for _ in 0..warmup {
            run_pair(&mut s);
        }
        let mut reports = Vec::with_capacity(2 * rounds as usize);
        let mut row = ScalingRow {
            tokens,
            buffer: Duration::ZERO,
            relex: Duration::ZERO,
            parse: Duration::ZERO,
            maintenance: Duration::ZERO,
            sem: Duration::ZERO,
            total: Duration::ZERO,
            fresh_slots: 0,
            recycled_slots: 0,
            key_allocs: 0,
        };
        for _ in 0..rounds {
            let (a, b) = run_pair(&mut s);
            for r in [a, b] {
                row.fresh_slots += r.fresh_node_slots;
                row.recycled_slots += r.recycled_node_slots;
                row.key_allocs += r.merge_key_allocs;
                reports.push(r);
            }
        }
        let median = |f: &dyn Fn(&ReparseReport) -> Duration| -> Duration {
            let mut v: Vec<Duration> = reports.iter().map(f).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        row.buffer = median(&|r| r.buffer);
        row.relex = median(&|r| r.relex);
        row.parse = median(&|r| r.parse);
        row.maintenance = median(&|r| r.maintenance);
        row.sem = median(&|r| r.sem);
        row.total = median(&|r| r.total);
        out.push(row);
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.tokens),
                fmt_dur(r.buffer),
                fmt_dur(r.relex),
                fmt_dur(r.parse),
                fmt_dur(r.maintenance),
                fmt_dur(r.sem),
                fmt_dur(r.total),
                format!("{}", r.fresh_slots),
                format!("{}", r.key_allocs),
            ]
        })
        .collect();
    println!();
    print_table(
        title,
        &[
            "tokens",
            "buffer",
            "relex",
            "parse",
            "maintenance",
            "sem",
            "total",
            "fresh slots",
            "key allocs",
        ],
        &rows,
    );
    println!("\n(per-edit cost should be flat in document size; stage timings");
    println!(" come from ReparseReport, the pipeline's built-in metrics —");
    println!(" `buffer` is the rope mutation itself, O(log N + edit))");
    out
}

/// The zero-allocation threshold check behind `--enforce-zero-alloc`.
///
/// Runs self-cancelling edits on a small document long enough to cross the
/// periodic full rebalance and several GC cycles (so the node free list and
/// every pool reach steady state), then demands that each further reparse
/// reports **zero** fresh node slots and **zero** merge-key allocations.
/// Small documents have the *tightest* GC cadence (the collection trigger
/// is Θ(live) allocations), so this is the strictest setting in which the
/// free list must become self-sustaining.
fn steady_state_zero_alloc_check(cfg: &wg_core::SessionConfig, quick: bool) -> bool {
    let program = c_program(&GenSpec::sized(150, 0.0, 7));
    let (start, len) = comparable_site(&program.text, 0.5).expect("generator emits var fillers");
    let mut s = Session::new(cfg, &program.text).expect("parses");
    let original = s.text()[start..start + len].to_string();
    let warm_pairs = 70usize;
    let check_pairs = if quick { 10usize } else { 20 };
    for _ in 0..warm_pairs {
        s.edit(start, len, "qqq");
        assert!(s.reparse().expect("no session error").incorporated);
        s.edit(start, 3, &original);
        assert!(s.reparse().expect("no session error").incorporated);
    }
    let gcs_warm = s.metrics().gcs;
    let mut fresh = 0u64;
    let mut keys = 0u64;
    let mut recycled = 0u64;
    for _ in 0..check_pairs {
        s.edit(start, len, "qqq");
        let a = s.reparse().expect("no session error");
        assert!(a.incorporated);
        s.edit(start, 3, &original);
        let b = s.reparse().expect("no session error");
        assert!(b.incorporated);
        for r in [&a.report, &b.report] {
            fresh += r.fresh_node_slots;
            keys += r.merge_key_allocs;
            recycled += r.recycled_node_slots;
        }
    }
    println!(
        "\nzero-alloc check: {warm_pairs} warm-up pairs ({gcs_warm} collections), \
         {check_pairs} measured pairs: {fresh} fresh node slots, \
         {keys} merge-key allocs, {recycled} recycled slots"
    );
    if gcs_warm == 0 {
        eprintln!("zero-alloc check: warm-up never collected — cadence bug");
        return false;
    }
    fresh == 0 && keys == 0
}

/// Hand-rolled JSON (the container has no serde): the scaling table plus the
/// deterministic/IGLR comparison, in nanoseconds.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    lines: usize,
    edit_pairs: usize,
    det_per_reparse: Duration,
    iglr_per_reparse: Duration,
    ratio: f64,
    scaling: &[ScalingRow],
    scaling_full_c: &[ScalingRow],
) {
    fn scaling_rows(j: &mut String, rows: &[ScalingRow]) {
        for (i, r) in rows.iter().enumerate() {
            j.push_str(&format!(
                "    {{\"tokens\": {}, \"buffer_ns\": {}, \"relex_ns\": {}, \"parse_ns\": {}, \"maintenance_ns\": {}, \"sem_ns\": {}, \"total_ns\": {}, \"fresh_node_slots\": {}, \"recycled_node_slots\": {}, \"merge_key_allocs\": {}}}{}\n",
                r.tokens,
                r.buffer.as_nanos(),
                r.relex.as_nanos(),
                r.parse.as_nanos(),
                r.maintenance.as_nanos(),
                r.sem.as_nanos(),
                r.total.as_nanos(),
                r.fresh_slots,
                r.recycled_slots,
                r.key_allocs,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
    }
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"bench\": \"sec5_incremental\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"lines\": {lines},\n"));
    j.push_str(&format!("  \"edit_pairs\": {edit_pairs},\n"));
    j.push_str("  \"comparison\": {\n");
    j.push_str(&format!(
        "    \"det_ns_per_reparse\": {},\n",
        det_per_reparse.as_nanos()
    ));
    j.push_str(&format!(
        "    \"iglr_ns_per_reparse\": {},\n",
        iglr_per_reparse.as_nanos()
    ));
    j.push_str(&format!("    \"iglr_over_det_ratio\": {ratio:.4}\n"));
    j.push_str("  },\n");
    j.push_str("  \"scaling\": [\n");
    scaling_rows(&mut j, scaling);
    j.push_str("  ],\n");
    j.push_str("  \"scaling_full_c\": [\n");
    scaling_rows(&mut j, scaling_full_c);
    j.push_str("  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
