//! **Section 5, incremental comparison** — the paper's protocol: apply
//! self-cancelling modifications to individual tokens, reparsing after each
//! change; the running-time difference between the deterministic parser and
//! the IGLR parser was "undetectable".
//!
//! We run identical edit scripts through both parsers (same lexer, same
//! damage computation) and report mean reparse latency.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_incremental [lines] [edits]`

use std::time::Duration;
use wg_bench::{fmt_dur, print_table, DetSession};
use wg_core::Session;
use wg_langs::generate::{c_program, edit_sites, GenSpec};
use wg_langs::simp_c_det;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let edits: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(lines, 0.0, 7));
    let sites = edit_sites(&program.text, edits, 11);

    // IGLR session.
    let mut iglr = Session::new(&cfg, &program.text).expect("parses");
    let mut t_iglr = Duration::ZERO;
    let mut iglr_ops = 0usize;
    for &(start, len) in &sites {
        let original = iglr.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        iglr.edit(start, len, "qqq");
        assert!(iglr.reparse().expect("no session error").incorporated);
        iglr.edit(start, 3, &original);
        let out = iglr.reparse().expect("no session error");
        assert!(out.incorporated);
        t_iglr += t0.elapsed();
        iglr_ops += out.stats.terminal_shifts
            + out.stats.subtree_shifts
            + out.stats.run_shifts
            + out.stats.reductions;
    }

    // Deterministic session, same script.
    let mut det = DetSession::new(&cfg, &program.text);
    let mut t_det = Duration::ZERO;
    let mut det_ops = 0usize;
    for &(start, len) in &sites {
        let original = det.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        det.edit_and_reparse(start, len, "qqq").expect("parses");
        det.edit_and_reparse(start, 3, &original).expect("parses");
        t_det += t0.elapsed();
        det_ops += det.last_stats.terminal_shifts
            + det.last_stats.subtree_shifts
            + det.last_stats.run_shifts
            + det.last_stats.reductions;
    }

    let per = |t: Duration| t / (2 * sites.len().max(1)) as u32;
    let rows = vec![
        vec![
            "deterministic".into(),
            fmt_dur(per(t_det)),
            format!("{}", det_ops / (2 * sites.len())),
        ],
        vec![
            "IGLR".into(),
            fmt_dur(per(t_iglr)),
            format!("{}", iglr_ops / (2 * sites.len())),
        ],
    ];
    print_table(
        "Section 5 — self-cancelling token edits (mean per reparse)",
        &["parser", "reparse latency", "parser ops (last edit)"],
        &rows,
    );
    let ratio = per(t_iglr).as_secs_f64() / per(t_det).as_secs_f64().max(1e-12);
    println!(
        "\n{} lines, {} edit pairs; IGLR/deterministic latency ratio {ratio:.2}x",
        lines,
        sites.len()
    );
    println!("(paper: \"the difference in running times ... was undetectable\")");
}
