//! **Section 5, incremental comparison** — the paper's protocol: apply
//! self-cancelling modifications to individual tokens, reparsing after each
//! change; the running-time difference between the deterministic parser and
//! the IGLR parser was "undetectable".
//!
//! We run identical edit scripts through both parsers (same lexer, same
//! damage computation) and report mean reparse latency.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_incremental [lines] [edits]`

use std::time::Duration;
use wg_bench::{fmt_dur, print_table, DetSession};
use wg_core::Session;
use wg_langs::generate::{c_program, edit_sites, GenSpec};
use wg_langs::simp_c_det;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    let edits: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let cfg = simp_c_det();
    let program = c_program(&GenSpec::sized(lines, 0.0, 7));
    let sites = edit_sites(&program.text, edits, 11);

    // IGLR session.
    let mut iglr = Session::new(&cfg, &program.text).expect("parses");
    let mut t_iglr = Duration::ZERO;
    let mut iglr_ops = 0usize;
    for &(start, len) in &sites {
        let original = iglr.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        iglr.edit(start, len, "qqq");
        assert!(iglr.reparse().expect("no session error").incorporated);
        iglr.edit(start, 3, &original);
        let out = iglr.reparse().expect("no session error");
        assert!(out.incorporated);
        t_iglr += t0.elapsed();
        iglr_ops += out.stats.terminal_shifts
            + out.stats.subtree_shifts
            + out.stats.run_shifts
            + out.stats.reductions;
    }

    // Deterministic session, same script.
    let mut det = DetSession::new(&cfg, &program.text);
    let mut t_det = Duration::ZERO;
    let mut det_ops = 0usize;
    for &(start, len) in &sites {
        let original = det.text()[start..start + len].to_string();
        let t0 = std::time::Instant::now();
        det.edit_and_reparse(start, len, "qqq").expect("parses");
        det.edit_and_reparse(start, 3, &original).expect("parses");
        t_det += t0.elapsed();
        det_ops += det.last_stats.terminal_shifts
            + det.last_stats.subtree_shifts
            + det.last_stats.run_shifts
            + det.last_stats.reductions;
    }

    let per = |t: Duration| t / (2 * sites.len().max(1)) as u32;
    let rows = vec![
        vec![
            "deterministic".into(),
            fmt_dur(per(t_det)),
            format!("{}", det_ops / (2 * sites.len())),
        ],
        vec![
            "IGLR".into(),
            fmt_dur(per(t_iglr)),
            format!("{}", iglr_ops / (2 * sites.len())),
        ],
    ];
    print_table(
        "Section 5 — self-cancelling token edits (mean per reparse)",
        &["parser", "reparse latency", "parser ops (last edit)"],
        &rows,
    );
    let ratio = per(t_iglr).as_secs_f64() / per(t_det).as_secs_f64().max(1e-12);
    println!(
        "\n{} lines, {} edit pairs; IGLR/deterministic latency ratio {ratio:.2}x",
        lines,
        sites.len()
    );
    println!("(paper: \"the difference in running times ... was undetectable\")");

    scaling_sweep(&cfg);
}

/// Per-edit reparse cost across document sizes: a single-token
/// self-cancelling edit in 1k/10k/100k-token documents. With shared
/// language artifacts, pooled parser scratch, the gap-buffered token tape,
/// and damage-bounded relexing, the per-stage timings from
/// [`wg_core::ReparseReport`] should stay flat as the document grows.
fn scaling_sweep(cfg: &wg_core::SessionConfig) {
    use wg_core::ReparseReport;

    let mut rows = Vec::new();
    for &lines in &[150usize, 1_500, 15_000] {
        let program = c_program(&GenSpec::sized(lines, 0.0, 7));
        let site = edit_sites(&program.text, 1, 13)[0];
        let mut s = Session::new(cfg, &program.text).expect("parses");
        let tokens = s.token_count();
        let (start, len) = site;
        let original = s.text()[start..start + len].to_string();

        let run_pair = |s: &mut Session| -> (ReparseReport, ReparseReport) {
            s.edit(start, len, "qqq");
            let a = s.reparse().expect("no session error");
            assert!(a.incorporated);
            s.edit(start, 3, &original);
            let b = s.reparse().expect("no session error");
            assert!(b.incorporated);
            (a.report, b.report)
        };

        // Warm the pools, then measure.
        for _ in 0..4 {
            run_pair(&mut s);
        }
        let rounds = 32;
        let mut relex = Duration::ZERO;
        let mut parse = Duration::ZERO;
        let mut maint = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..rounds {
            let (a, b) = run_pair(&mut s);
            for r in [a, b] {
                relex += r.relex;
                parse += r.parse;
                maint += r.maintenance;
                total += r.total;
            }
        }
        let n = (2 * rounds) as u32;
        rows.push(vec![
            format!("{tokens}"),
            fmt_dur(relex / n),
            fmt_dur(parse / n),
            fmt_dur(maint / n),
            fmt_dur(total / n),
        ]);
    }
    println!();
    print_table(
        "Per-stage reparse cost vs document size (1-token edit)",
        &["tokens", "relex", "parse", "maintenance", "total"],
        &rows,
    );
    println!("\n(per-edit cost should be flat in document size; stage timings");
    println!(" come from ReparseReport, the pipeline's built-in metrics)");
}
