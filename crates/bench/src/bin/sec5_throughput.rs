//! **Section 5, service throughput** — the workload the single-session
//! benches cannot express: an editor service holding many open documents,
//! each under a sustained self-cancelling edit stream (the Section 5
//! protocol), served by the work-stealing `wg-workspace` pool.
//!
//! The grid sweeps document count × shard threads and reports aggregate
//! edits/sec plus per-cycle service-latency percentiles, the two axes the
//! empirical parser-comparison literature evaluates (sustained throughput,
//! bounded per-edit latency). A direct single-`Session` run of the same
//! script gives the no-pool baseline, so the table directly shows (a) the
//! scale-out factor across threads and (b) the latency tax of the queue +
//! shard indirection on a single document. A second sweep drives the
//! read-mostly editor profile (95% semantic queries, 5% edit pairs) that
//! the stealing scheduler must keep responsive; its `snapshot` column
//! reports the share of queries served from published document snapshots
//! on the caller's thread (never entering a mailbox).
//!
//! Scale-aware gates: the measured-window imbalance
//! (`busiest shard busy / wall`) at 64 docs × 4 threads must stay under
//! 1.15 on any machine — stealing exists to flatten it; the ≥1.5× speedup
//! assertion only applies when the machine actually has ≥4 cores. The
//! snapshot-isolation gate re-runs the contended read-mostly cell with the
//! edit rate doubled (10% edit pairs) and requires query p99 to stay
//! within 1.25× of the 5% figure — readers answer from immutable
//! snapshots, so writer pressure must not queue behind them. With
//! `--check-against BENCH_throughput.json` the fresh numbers also gate
//! against the committed baseline (per-cell p50 and edits/sec within
//! `--tolerance`), retrying once on failure to absorb CI load spikes.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_throughput -- [--quick]`
//!
//! Writes `BENCH_throughput.json` for CI archival.

use std::time::{Duration, Instant};
use wg_bench::json::Json;
use wg_bench::{
    doc_workloads, fmt_dur, print_table, read_mostly_ops, read_mostly_ops_every, DocWorkload,
    ReadOp,
};
use wg_core::{LanguageRegistry, Session};
use wg_langs::simp_c_det_defs;
use wg_workspace::{DocId, EditReq, SemQuery, Workspace};

const DOC_COUNTS: [usize; 3] = [1, 8, 64];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Documents in the read-mostly sweep (the contended grid corner).
const READ_DOCS: usize = 64;
/// Ops issued per document per round in the read-mostly sweep.
const OPS_PER_ROUND: usize = 8;

/// Edit pairs carried per command. Editors batch bursts the same way; the
/// coalescer inside the shard then folds same-site mutate/restore runs
/// into shared reparse cycles, so `reparses < edits` by design here.
const PAIRS_PER_CMD: usize = 4;

/// Gates (see module docs): measured-window imbalance at 64 docs × 4
/// threads, and the parallel speedup only claimed on real multi-core.
const GATE_IMBALANCE_MAX: f64 = 1.15;
const GATE_SPEEDUP_MIN: f64 = 1.5;
/// Doubling the edit rate may grow read-mostly query p99 at most this
/// much — snapshot reads never queue behind the writer.
const GATE_SNAPSHOT_P99_FACTOR: f64 = 1.25;
/// Thread count of the read-mostly cell the snapshot gate re-runs.
const SNAPSHOT_GATE_THREADS: usize = 4;
/// Baseline latencies below this are scheduler jitter, never gated.
const GATE_NOISE_FLOOR_NS: u64 = 2_000;

struct Cell {
    docs: usize,
    threads: usize,
    edits: u64,
    wall: Duration,
    edits_per_sec: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    busy_max: Duration,
    /// Busiest shard's busy time over the measured window divided by the
    /// measured wall — the live load-balance figure stealing flattens.
    imbalance: f64,
    steals: u64,
    migrations: u64,
    coalesced: u64,
    reparses: u64,
}

struct ReadCell {
    threads: usize,
    ops: u64,
    wall: Duration,
    ops_per_sec: f64,
    query_p50: Duration,
    query_p95: Duration,
    query_p99: Duration,
    edit_p50: Duration,
    imbalance: f64,
    /// Semantic queries issued (the denominator of the snapshot share).
    queries: u64,
    /// Queries answered on the caller's thread from a published snapshot.
    snapshot_reads: u64,
}

impl ReadCell {
    /// Share of queries served from snapshots, e.g. `"100%"`.
    fn snapshot_share(&self) -> String {
        format!(
            "{:.0}%",
            100.0 * self.snapshot_reads as f64 / self.queries.max(1) as f64
        )
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> Duration {
    if sorted_ns.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    Duration::from_nanos(sorted_ns[ix])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check_against: Option<String> = None;
    let mut tolerance = 0.25f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check-against" => {
                check_against = Some(it.next().expect("--check-against needs a path"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a fraction, e.g. 0.25");
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let (lines, pairs, warmup_pairs) = if quick { (150, 30, 4) } else { (400, 80, 8) };
    let (read_ops, read_warmup) = if quick { (112, 16) } else { (352, 32) };
    // Read the baseline up front: the gate points at the very file this run
    // overwrites at the end.
    let baseline = check_against.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, text)
    });

    let registry = std::sync::Arc::new(LanguageRegistry::new());
    let (grammar, lexdef) = simp_c_det_defs();
    let config = registry
        .get_or_compile(grammar, lexdef)
        .expect("language compiles");

    // Per-document workloads are generated once per document count and
    // replayed identically at every thread count.
    let workloads: Vec<(usize, Vec<DocWorkload>)> = DOC_COUNTS
        .iter()
        .map(|&d| (d, doc_workloads(d, lines, pairs + warmup_pairs, 7)))
        .collect();
    let read_loads: Vec<(String, Vec<ReadOp>)> = doc_workloads(READ_DOCS, lines, 1, 7)
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let ops = read_mostly_ops(&w.text, read_ops, 11 + i as u64);
            (w.text, ops)
        })
        .collect();
    // The same documents and sites at twice the edit rate (10% pairs) —
    // the writer-pressure run the snapshot gate compares against.
    let double_loads: Vec<(String, Vec<ReadOp>)> = read_loads
        .iter()
        .enumerate()
        .map(|(i, (text, _))| {
            let ops = read_mostly_ops_every(text, read_ops, 11 + i as u64, 10);
            (text.clone(), ops)
        })
        .collect();

    // Direct baseline: the same single-document script on a bare Session,
    // no pool, no queues — the sec5_incremental-style figure.
    let direct_p50 = {
        let w = &workloads[0].1[0];
        let mut s = Session::new(&config, &w.text).expect("parses");
        let mut lat = Vec::new();
        for (i, (a, b)) in w.pairs.iter().enumerate() {
            for op in [a, b] {
                let t0 = Instant::now();
                s.edit(op.start, op.removed, &op.insert);
                assert!(s.reparse().expect("no session error").incorporated);
                if i >= warmup_pairs {
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        lat.sort_unstable();
        percentile(&lat, 0.50)
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep = |tag: &str| -> (Vec<Cell>, Vec<ReadCell>, ReadCell) {
        let mut cells = Vec::new();
        for (docs, loads) in &workloads {
            for &threads in &THREAD_COUNTS {
                cells.push(run_cell(
                    &registry,
                    &config,
                    *docs,
                    threads,
                    loads,
                    warmup_pairs,
                ));
            }
        }
        let read_cells: Vec<ReadCell> = THREAD_COUNTS
            .iter()
            .map(|&t| run_read_cell(&registry, &config, t, &read_loads, read_warmup))
            .collect();
        let double_cell = run_read_cell(
            &registry,
            &config,
            SNAPSHOT_GATE_THREADS,
            &double_loads,
            read_warmup,
        );
        if !tag.is_empty() {
            println!("({tag} sweep complete)");
        }
        (cells, read_cells, double_cell)
    };
    let (mut cells, mut read_cells, mut double_cell) = sweep("");
    assert_eq!(
        registry.table_builds(),
        1,
        "every cell must reuse the one compiled language"
    );

    let mut scale_ok = scale_gates(&cells, cores, true);
    let mut snap_ok = snapshot_gate(&read_cells, &double_cell, true);
    let mut gate_ok = baseline
        .as_ref()
        .is_none_or(|(p, t)| regression_gate(p, t, &cells, &read_cells, tolerance));
    if !scale_ok || !snap_ok || !gate_ok {
        // Anti-flake: a load spike on shared CI hardware inflates every
        // latency at once. Re-measure once and gate on the element-wise
        // best of the two runs — a real regression fails both.
        println!("\ngate failed — re-measuring once to rule out transient load");
        let (retry, read_retry, double_retry) = sweep("retry");
        cells = merge_best(cells, retry);
        read_cells = merge_best_read(read_cells, read_retry);
        double_cell = merge_best_read(vec![double_cell], vec![double_retry])
            .pop()
            .unwrap();
        scale_ok = scale_gates(&cells, cores, true);
        snap_ok = snapshot_gate(&read_cells, &double_cell, true);
        gate_ok = baseline
            .as_ref()
            .is_none_or(|(p, t)| regression_gate(p, t, &cells, &read_cells, tolerance));
    }

    // Report.
    for &docs in &DOC_COUNTS {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .filter(|c| c.docs == docs)
            .map(|c| {
                let base = cells
                    .iter()
                    .find(|b| b.docs == docs && b.threads == 1)
                    .unwrap();
                vec![
                    format!("{}", c.threads),
                    format!("{:.0}", c.edits_per_sec),
                    format!("{:.2}x", c.edits_per_sec / base.edits_per_sec),
                    fmt_dur(c.p50),
                    fmt_dur(c.p99),
                    format!("{:.2}", c.imbalance),
                    format!("{}", c.steals),
                    format!("{}", c.coalesced),
                ]
            })
            .collect();
        print_table(
            &format!("Sustained edit stream, {docs} document(s)"),
            &[
                "threads",
                "edits/s",
                "speedup",
                "p50",
                "p99",
                "imbal",
                "steals",
                "coalesced",
            ],
            &rows,
        );
    }
    let read_rows: Vec<Vec<String>> = read_cells
        .iter()
        .map(|c| {
            vec![
                format!("{}", c.threads),
                format!("{:.0}", c.ops_per_sec),
                fmt_dur(c.query_p50),
                fmt_dur(c.query_p95),
                fmt_dur(c.query_p99),
                fmt_dur(c.edit_p50),
                format!("{:.2}", c.imbalance),
                c.snapshot_share(),
            ]
        })
        .collect();
    print_table(
        &format!("Read-mostly (95% query / 5% edit), {READ_DOCS} documents"),
        &[
            "threads",
            "ops/s",
            "query p50",
            "query p95",
            "query p99",
            "edit p50",
            "imbal",
            "snapshot",
        ],
        &read_rows,
    );
    println!(
        "doubled edit rate (10% pairs, {SNAPSHOT_GATE_THREADS} threads): query p99 {} \
         vs {} at 5% — snapshot reads stay on the caller's thread ({} from snapshots)",
        fmt_dur(double_cell.query_p99),
        fmt_dur(
            read_cells
                .iter()
                .find(|c| c.threads == SNAPSHOT_GATE_THREADS)
                .map(|c| c.query_p99)
                .unwrap_or_default()
        ),
        double_cell.snapshot_share(),
    );

    let single = cells
        .iter()
        .find(|c| c.docs == 1 && c.threads == 1)
        .unwrap();
    let tax = single.p50.as_nanos() as f64 / direct_p50.as_nanos().max(1) as f64 - 1.0;
    println!(
        "\nsingle-document p50: direct session {} vs 1-thread workspace {} ({:+.1}% service overhead)",
        fmt_dur(direct_p50),
        fmt_dur(single.p50),
        tax * 100.0
    );
    let wide = cells
        .iter()
        .find(|c| c.docs == 64 && c.threads == 4)
        .unwrap();
    let wide_base = cells
        .iter()
        .find(|c| c.docs == 64 && c.threads == 1)
        .unwrap();
    println!(
        "64-document aggregate: {:.0} edits/s at 4 threads vs {:.0} at 1 thread ({:.2}x on {} core(s); window imbalance {:.2})",
        wide.edits_per_sec,
        wide_base.edits_per_sec,
        wide.edits_per_sec / wide_base.edits_per_sec,
        cores,
        wide.imbalance
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores — speedups reflect pipelining overlap, not parallel reparse"
        );
        println!(
            "SKIPPED: multi-core rebaseline — this run has {cores} core(s) (< 4), so the \
             regenerated BENCH_throughput.json is still a low-core capture"
        );
    } else {
        println!(
            "multi-core rebaseline: {cores} cores — the regenerated BENCH_throughput.json is a \
             multi-core capture; commit it to retire any low-core baseline"
        );
    }

    write_json(
        "BENCH_throughput.json",
        quick,
        lines,
        pairs,
        cores,
        direct_p50,
        &cells,
        &read_cells,
        &double_cell,
    );
    if !scale_ok {
        eprintln!("FAIL: scale gate (imbalance/speedup) failed twice (see above)");
    }
    if !snap_ok {
        eprintln!("FAIL: snapshot gate (doubled-edit-rate query p99) failed twice (see above)");
    }
    if !gate_ok {
        eprintln!("FAIL: regression vs committed baseline persisted across a retry (see above)");
    }
    if !scale_ok || !snap_ok || !gate_ok {
        std::process::exit(1);
    }
}

/// The snapshot-isolation gate: doubling the edit rate in the contended
/// read-mostly cell may grow query p99 by at most
/// [`GATE_SNAPSHOT_P99_FACTOR`]. Reads are answered from published
/// snapshots on the caller's thread, so writer pressure affects snapshot
/// *freshness*, never reader latency; a failure here means queries started
/// queueing behind reparse cycles again.
fn snapshot_gate(read_cells: &[ReadCell], double: &ReadCell, verbose: bool) -> bool {
    let base = read_cells
        .iter()
        .find(|c| c.threads == SNAPSHOT_GATE_THREADS)
        .expect("gate thread count is part of the sweep");
    // Clamp the baseline up to the noise floor: sub-microsecond p99s are
    // scheduler jitter and a ratio of jitter gates nothing real.
    let base_ns = (base.query_p99.as_nanos() as u64).max(GATE_NOISE_FLOOR_NS);
    let now_ns = double.query_p99.as_nanos() as u64;
    let ratio = now_ns as f64 / base_ns as f64;
    if ratio > GATE_SNAPSHOT_P99_FACTOR {
        eprintln!(
            "snapshot gate: doubled edit rate query p99 {now_ns}ns vs {base_ns}ns \
             ({ratio:.2}x > {GATE_SNAPSHOT_P99_FACTOR}x)"
        );
        false
    } else {
        if verbose {
            println!(
                "snapshot gate: doubled edit rate query p99 {now_ns}ns vs {base_ns}ns \
                 ({ratio:.2}x <= {GATE_SNAPSHOT_P99_FACTOR}x) ok"
            );
        }
        true
    }
}

/// The machine-appropriate subset of the scale assertions: the window
/// imbalance gate is always on (on one core the busiest shard cannot
/// exceed the wall, so it is structurally satisfiable everywhere); the
/// parallel-speedup gate only claims real parallelism on ≥4 cores.
fn scale_gates(cells: &[Cell], cores: usize, verbose: bool) -> bool {
    let wide = cells
        .iter()
        .find(|c| c.docs == 64 && c.threads == 4)
        .expect("64x4 cell");
    let mut ok = true;
    if wide.imbalance >= GATE_IMBALANCE_MAX {
        eprintln!(
            "scale gate: 64 docs x 4 threads window imbalance {:.3} >= {GATE_IMBALANCE_MAX}",
            wide.imbalance
        );
        ok = false;
    } else if verbose {
        println!(
            "scale gate: 64 docs x 4 threads window imbalance {:.3} < {GATE_IMBALANCE_MAX} ok",
            wide.imbalance
        );
    }
    if cores >= 4 {
        let base = cells
            .iter()
            .find(|c| c.docs == 64 && c.threads == 1)
            .expect("64x1 cell");
        let speedup = wide.edits_per_sec / base.edits_per_sec;
        if speedup < GATE_SPEEDUP_MIN {
            eprintln!("scale gate: 64 docs 4-thread speedup {speedup:.2}x < {GATE_SPEEDUP_MIN}x");
            ok = false;
        } else if verbose {
            println!(
                "scale gate: 64 docs 4-thread speedup {speedup:.2}x >= {GATE_SPEEDUP_MIN}x ok"
            );
        }
    } else if verbose {
        println!("scale gate: {cores} core(s) < 4 — speedup assertion skipped, imbalance gated");
    }
    ok
}

/// Element-wise best of two grid sweeps: the larger throughput, the
/// smaller latencies and imbalance. Scheduler counters come from the
/// higher-throughput run so each row stays internally consistent.
fn merge_best(a: Vec<Cell>, b: Vec<Cell>) -> Vec<Cell> {
    a.into_iter()
        .zip(b)
        .map(|(x, y)| {
            let (fast, slow) = if x.edits_per_sec >= y.edits_per_sec {
                (x, y)
            } else {
                (y, x)
            };
            Cell {
                p50: fast.p50.min(slow.p50),
                p95: fast.p95.min(slow.p95),
                p99: fast.p99.min(slow.p99),
                imbalance: fast.imbalance.min(slow.imbalance),
                ..fast
            }
        })
        .collect()
}

fn merge_best_read(a: Vec<ReadCell>, b: Vec<ReadCell>) -> Vec<ReadCell> {
    a.into_iter()
        .zip(b)
        .map(|(x, y)| {
            let (fast, slow) = if x.ops_per_sec >= y.ops_per_sec {
                (x, y)
            } else {
                (y, x)
            };
            ReadCell {
                query_p50: fast.query_p50.min(slow.query_p50),
                query_p95: fast.query_p95.min(slow.query_p95),
                query_p99: fast.query_p99.min(slow.query_p99),
                edit_p50: fast.edit_p50.min(slow.edit_p50),
                imbalance: fast.imbalance.min(slow.imbalance),
                ..fast
            }
        })
        .collect()
}

/// Compares fresh cells against a committed `BENCH_throughput.json`:
/// per-(docs, threads) cell, p50 latency must not grow past `tolerance`
/// (above the noise floor) and edits/sec must not fall below it; the
/// read-mostly rows gate ops/sec and query p50 the same way. Missing
/// baseline rows or fields are skipped (new grid corners are allowed),
/// but at least one gated comparison must happen.
fn regression_gate(
    path: &str,
    baseline: &str,
    cells: &[Cell],
    read_cells: &[ReadCell],
    tolerance: f64,
) -> bool {
    let doc = match Json::parse(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("regression gate: {path} is not valid JSON: {e}");
            return false;
        }
    };
    println!(
        "\nregression gate vs {path} (tolerance {:.0}%):",
        tolerance * 100.0
    );
    let mut ok = true;
    let gated = std::cell::Cell::new(0usize);
    let check_latency = |label: &str, base_ns: u64, now: Duration| {
        let now_ns = now.as_nanos() as u64;
        let delta = (now_ns as f64 / (base_ns as f64).max(1.0) - 1.0) * 100.0;
        if base_ns < GATE_NOISE_FLOOR_NS {
            println!("  {label}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) [sub-noise, not gated]");
            return true;
        }
        gated.set(gated.get() + 1);
        if delta > tolerance * 100.0 {
            eprintln!("  {label}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) REGRESSION");
            false
        } else {
            println!("  {label}: {base_ns}ns -> {now_ns}ns ({delta:+.0}%) ok");
            true
        }
    };
    let check_rate = |label: &str, base: f64, now: f64| {
        let delta = (now / base.max(1e-9) - 1.0) * 100.0;
        gated.set(gated.get() + 1);
        if now < base * (1.0 - tolerance) {
            eprintln!("  {label}: {base:.0}/s -> {now:.0}/s ({delta:+.0}%) REGRESSION");
            false
        } else {
            println!("  {label}: {base:.0}/s -> {now:.0}/s ({delta:+.0}%) ok");
            true
        }
    };
    let grid = doc.get("grid").and_then(Json::as_arr);
    for c in cells {
        let Some(base) = grid.and_then(|rows| {
            rows.iter().find(|r| {
                r.get("docs").and_then(Json::as_u64) == Some(c.docs as u64)
                    && r.get("threads").and_then(Json::as_u64) == Some(c.threads as u64)
            })
        }) else {
            println!("  grid {}x{}: no baseline row — skipped", c.docs, c.threads);
            continue;
        };
        let label = format!("grid {}x{} p50", c.docs, c.threads);
        if let Some(ns) = base.get("p50_ns").and_then(Json::as_u64) {
            ok &= check_latency(&label, ns, c.p50);
        }
        let label = format!("grid {}x{} edits/s", c.docs, c.threads);
        if let Some(rate) = base.get("edits_per_sec").and_then(Json::as_f64) {
            ok &= check_rate(&label, rate, c.edits_per_sec);
        }
    }
    let read = doc.get("read_mostly").and_then(Json::as_arr);
    for c in read_cells {
        let Some(base) = read.and_then(|rows| {
            rows.iter()
                .find(|r| r.get("threads").and_then(Json::as_u64) == Some(c.threads as u64))
        }) else {
            println!("  read-mostly x{}: no baseline row — skipped", c.threads);
            continue;
        };
        let label = format!("read-mostly x{} query p50", c.threads);
        if let Some(ns) = base.get("query_p50_ns").and_then(Json::as_u64) {
            ok &= check_latency(&label, ns, c.query_p50);
        }
        let label = format!("read-mostly x{} ops/s", c.threads);
        if let Some(rate) = base.get("ops_per_sec").and_then(Json::as_f64) {
            ok &= check_rate(&label, rate, c.ops_per_sec);
        }
    }
    if gated.get() == 0 {
        eprintln!("regression gate: nothing cleared the noise floor — stale baseline?");
        return false;
    }
    ok
}

/// One grid cell: a fresh workspace, the documents opened, the scripts
/// replayed (warm-up pairs unmeasured), per-cycle latencies collected from
/// the shard service histogram. Shard busy times are snapshotted at the
/// warm-up boundary so the imbalance figure covers exactly the measured
/// window — `WorkspaceMetrics::imbalance` spans the whole lifetime and
/// would dilute it with open/warm-up time.
fn run_cell(
    registry: &std::sync::Arc<LanguageRegistry>,
    config: &wg_core::SessionConfig,
    docs: usize,
    threads: usize,
    loads: &[DocWorkload],
    warmup_pairs: usize,
) -> Cell {
    let ws = Workspace::with_registry(threads, 64, std::sync::Arc::clone(registry));
    let ids: Vec<DocId> = loads
        .iter()
        .map(|w| ws.open_with(config, &w.text).expect("opens"))
        .collect();

    let total_pairs = loads[0].pairs.len();
    let mut measured_edits = 0u64;
    let mut wall = Duration::ZERO;
    let mut busy_at_warmup: Option<Vec<Duration>> = None;
    // One round per PAIRS_PER_CMD pairs: every document gets one command
    // carrying that chunk's mutate/restore edits, so the per-command
    // handoff cost is amortized and the drain-and-coalesce path sees
    // realistic multi-edit batches. Per-cycle latency percentiles come
    // from the workspace's own service-time histogram.
    let mut pair_ix = 0;
    while pair_ix < total_pairs {
        let chunk = (pair_ix..total_pairs.min(pair_ix + PAIRS_PER_CMD)).collect::<Vec<_>>();
        let measured = pair_ix >= warmup_pairs;
        if measured && busy_at_warmup.is_none() {
            // apply() is synchronous, so the shards quiesce here; wait for
            // the pool to report idle so every warm-up nanosecond is
            // already charged before the window baseline is taken.
            while !ws.idle() {
                std::thread::yield_now();
            }
            busy_at_warmup = Some(ws.metrics().shard_busy);
        }
        let t0 = Instant::now();
        let batch: Vec<(DocId, Vec<EditReq>)> = ids
            .iter()
            .zip(loads)
            .map(|(id, w)| {
                let edits: Vec<EditReq> = chunk
                    .iter()
                    .flat_map(|&p| {
                        let (a, b) = &w.pairs[p];
                        [
                            EditReq::replace(a.start, a.removed, &a.insert),
                            EditReq::replace(b.start, b.removed, &b.insert),
                        ]
                    })
                    .collect();
                (*id, edits)
            })
            .collect();
        for report in ws.apply(batch) {
            let outcome = report.result.expect("scripted edits apply");
            assert!(outcome.incorporated);
            if measured {
                measured_edits += outcome.edits_applied as u64;
            }
        }
        if measured {
            wall += t0.elapsed();
        }
        pair_ix += chunk.len();
    }
    let metrics = ws.shutdown();
    let warm = busy_at_warmup.unwrap_or_default();
    let busy_win = metrics
        .shard_busy
        .iter()
        .enumerate()
        .map(|(i, b)| b.saturating_sub(warm.get(i).copied().unwrap_or(Duration::ZERO)))
        .max()
        .unwrap_or(Duration::ZERO);
    Cell {
        docs,
        threads,
        edits: measured_edits,
        wall,
        edits_per_sec: measured_edits as f64 / wall.as_secs_f64().max(1e-9),
        p50: metrics.p50,
        p95: metrics.p95,
        p99: metrics.p99,
        busy_max: metrics
            .shard_busy
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO),
        imbalance: busy_win.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        steals: metrics.steals,
        migrations: metrics.migrations,
        coalesced: metrics.coalesced_edits,
        reparses: metrics.reparses,
    }
}

/// One read-mostly cell: 64 semantic documents, each replaying its 95%
/// query / 5% edit-pair script in rounds of [`OPS_PER_ROUND`] async
/// submissions (FIFO per document survives any migration, so queries see
/// exactly the text state the script implies).
fn run_read_cell(
    registry: &std::sync::Arc<LanguageRegistry>,
    config: &wg_core::SessionConfig,
    threads: usize,
    loads: &[(String, Vec<ReadOp>)],
    warmup_ops: usize,
) -> ReadCell {
    let ws = Workspace::with_registry(threads, 64, std::sync::Arc::clone(registry));
    let ids: Vec<DocId> = loads
        .iter()
        .map(|(text, _)| ws.open_with_semantics(config, text).expect("opens"))
        .collect();

    let total_ops = loads[0].1.len();
    let mut measured_ops = 0u64;
    let mut wall = Duration::ZERO;
    let mut busy_at_warmup: Option<Vec<Duration>> = None;
    let mut op_ix = 0;
    while op_ix < total_ops {
        let end = total_ops.min(op_ix + OPS_PER_ROUND);
        let measured = op_ix >= warmup_ops;
        if measured && busy_at_warmup.is_none() {
            while !ws.idle() {
                std::thread::yield_now();
            }
            busy_at_warmup = Some(ws.metrics().shard_busy);
        }
        let t0 = Instant::now();
        let mut queries = Vec::new();
        let mut applies = Vec::new();
        for (id, (_, ops)) in ids.iter().zip(loads) {
            for op in &ops[op_ix..end] {
                match op {
                    ReadOp::Query(at) => {
                        queries.push(ws.query_async(*id, SemQuery::ResolveAt(*at)).expect("doc"));
                    }
                    ReadOp::Pair(a, b) => {
                        let edits = vec![
                            EditReq::replace(a.start, a.removed, &a.insert),
                            EditReq::replace(b.start, b.removed, &b.insert),
                        ];
                        applies.push(ws.apply_async(*id, edits).expect("doc"));
                    }
                }
            }
        }
        for q in queries {
            q.wait().expect("query answered");
        }
        for p in applies {
            assert!(p.wait().result.expect("edits apply").incorporated);
        }
        if measured {
            wall += t0.elapsed();
            measured_ops += ((end - op_ix) * ids.len()) as u64;
        }
        op_ix = end;
    }
    let metrics = ws.shutdown();
    let warm = busy_at_warmup.unwrap_or_default();
    let busy_win = metrics
        .shard_busy
        .iter()
        .enumerate()
        .map(|(i, b)| b.saturating_sub(warm.get(i).copied().unwrap_or(Duration::ZERO)))
        .max()
        .unwrap_or(Duration::ZERO);
    ReadCell {
        threads,
        ops: measured_ops,
        wall,
        ops_per_sec: measured_ops as f64 / wall.as_secs_f64().max(1e-9),
        query_p50: metrics.query_p50,
        query_p95: metrics.query_p95,
        query_p99: metrics.query_p99,
        edit_p50: metrics.p50,
        imbalance: busy_win.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        queries: metrics.queries,
        snapshot_reads: metrics.snapshot_reads,
    }
}

/// Hand-rolled JSON (no serde in the container), matching the
/// `BENCH_incremental.json` conventions: everything in nanoseconds.
/// `cores` leads the header — every figure below it is meaningless
/// without knowing how much hardware parallelism was available.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    quick: bool,
    lines: usize,
    pairs: usize,
    cores: usize,
    direct_p50: Duration,
    cells: &[Cell],
    read_cells: &[ReadCell],
    double_cell: &ReadCell,
) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"bench\": \"sec5_throughput\",\n");
    j.push_str(&format!("  \"cores\": {cores},\n"));
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"lines_per_doc\": {lines},\n"));
    j.push_str(&format!("  \"measured_pairs_per_doc\": {pairs},\n"));
    j.push_str(&format!(
        "  \"direct_single_session_p50_ns\": {},\n",
        direct_p50.as_nanos()
    ));
    j.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let base = cells
            .iter()
            .find(|b| b.docs == c.docs && b.threads == 1)
            .unwrap();
        j.push_str(&format!(
            "    {{\"docs\": {}, \"threads\": {}, \"edits\": {}, \"wall_ns\": {}, \"edits_per_sec\": {:.1}, \"speedup_vs_1_thread\": {:.4}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"busiest_shard_ns\": {}, \"imbalance\": {:.4}, \"steals\": {}, \"migrations\": {}, \"coalesced_edits\": {}, \"reparses\": {}}}{}\n",
            c.docs,
            c.threads,
            c.edits,
            c.wall.as_nanos(),
            c.edits_per_sec,
            c.edits_per_sec / base.edits_per_sec,
            c.p50.as_nanos(),
            c.p95.as_nanos(),
            c.p99.as_nanos(),
            c.busy_max.as_nanos(),
            c.imbalance,
            c.steals,
            c.migrations,
            c.coalesced,
            c.reparses,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"read_mostly\": [\n");
    for (i, c) in read_cells.iter().enumerate() {
        j.push_str(&read_cell_json(c));
        j.push_str(if i + 1 < read_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ],\n");
    // The snapshot gate's writer-pressure run: same sites, 10% edit pairs.
    j.push_str("  \"read_double_rate\": [\n");
    j.push_str(&read_cell_json(double_cell));
    j.push_str("\n  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

/// One read-mostly JSON row (shared by the 5% sweep and the gate's 10%
/// run), no trailing comma or newline.
fn read_cell_json(c: &ReadCell) -> String {
    format!(
        "    {{\"docs\": {READ_DOCS}, \"threads\": {}, \"ops\": {}, \"wall_ns\": {}, \"ops_per_sec\": {:.1}, \"query_p50_ns\": {}, \"query_p95_ns\": {}, \"query_p99_ns\": {}, \"edit_cycle_p50_ns\": {}, \"imbalance\": {:.4}, \"queries\": {}, \"snapshot_reads\": {}}}",
        c.threads,
        c.ops,
        c.wall.as_nanos(),
        c.ops_per_sec,
        c.query_p50.as_nanos(),
        c.query_p95.as_nanos(),
        c.query_p99.as_nanos(),
        c.edit_p50.as_nanos(),
        c.imbalance,
        c.queries,
        c.snapshot_reads,
    )
}
