//! **Section 5, service throughput** — the workload the single-session
//! benches cannot express: an editor service holding many open documents,
//! each under a sustained self-cancelling edit stream (the Section 5
//! protocol), served by the sharded `wg-workspace` pool.
//!
//! The grid sweeps document count × shard threads and reports aggregate
//! edits/sec plus per-edit service-latency percentiles, the two axes the
//! empirical parser-comparison literature evaluates (sustained throughput,
//! bounded per-edit latency). A direct single-`Session` run of the same
//! script gives the no-pool baseline, so the table directly shows (a) the
//! scale-out factor across threads and (b) the latency tax of the queue +
//! shard indirection on a single document.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_throughput -- [--quick]`
//!
//! Writes `BENCH_throughput.json` for CI archival.

use std::time::{Duration, Instant};
use wg_bench::{doc_workloads, fmt_dur, print_table, DocWorkload};
use wg_core::{LanguageRegistry, Session};
use wg_langs::simp_c_det_defs;
use wg_workspace::{DocId, EditReq, Workspace};

const DOC_COUNTS: [usize; 3] = [1, 8, 64];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Edit pairs carried per command. Editors coalesce bursts the same way;
/// for the bench it keeps the queue/reply handoff (a few µs per command)
/// from drowning the ~10µs reparses being measured.
const PAIRS_PER_CMD: usize = 4;

struct Cell {
    docs: usize,
    threads: usize,
    edits: u64,
    wall: Duration,
    edits_per_sec: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    busy_max: Duration,
}

fn percentile(sorted_ns: &[u64], p: f64) -> Duration {
    if sorted_ns.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((p * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    Duration::from_nanos(sorted_ns[ix])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (lines, pairs, warmup_pairs) = if quick { (150, 30, 4) } else { (400, 80, 8) };

    let registry = std::sync::Arc::new(LanguageRegistry::new());
    let (grammar, lexdef) = simp_c_det_defs();
    let config = registry
        .get_or_compile(grammar, lexdef)
        .expect("language compiles");

    // Per-document workloads are generated once per document count and
    // replayed identically at every thread count.
    let workloads: Vec<(usize, Vec<DocWorkload>)> = DOC_COUNTS
        .iter()
        .map(|&d| (d, doc_workloads(d, lines, pairs + warmup_pairs, 7)))
        .collect();

    // Direct baseline: the same single-document script on a bare Session,
    // no pool, no queues — the sec5_incremental-style figure.
    let direct_p50 = {
        let w = &workloads[0].1[0];
        let mut s = Session::new(&config, &w.text).expect("parses");
        let mut lat = Vec::new();
        for (i, (a, b)) in w.pairs.iter().enumerate() {
            for op in [a, b] {
                let t0 = Instant::now();
                s.edit(op.start, op.removed, &op.insert);
                assert!(s.reparse().expect("no session error").incorporated);
                if i >= warmup_pairs {
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
            }
        }
        lat.sort_unstable();
        percentile(&lat, 0.50)
    };

    let mut cells: Vec<Cell> = Vec::new();
    for (docs, loads) in &workloads {
        for &threads in &THREAD_COUNTS {
            cells.push(run_cell(
                &registry,
                &config,
                *docs,
                threads,
                loads,
                warmup_pairs,
            ));
        }
    }
    assert_eq!(
        registry.table_builds(),
        1,
        "every cell must reuse the one compiled language"
    );

    // Report.
    for &docs in &DOC_COUNTS {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .filter(|c| c.docs == docs)
            .map(|c| {
                let base = cells
                    .iter()
                    .find(|b| b.docs == docs && b.threads == 1)
                    .unwrap();
                vec![
                    format!("{}", c.threads),
                    format!("{:.0}", c.edits_per_sec),
                    format!("{:.2}x", c.edits_per_sec / base.edits_per_sec),
                    fmt_dur(c.p50),
                    fmt_dur(c.p95),
                    fmt_dur(c.p99),
                    fmt_dur(c.busy_max),
                ]
            })
            .collect();
        print_table(
            &format!("Sustained edit stream, {docs} document(s)"),
            &[
                "threads",
                "edits/s",
                "speedup",
                "p50",
                "p95",
                "p99",
                "busiest shard",
            ],
            &rows,
        );
    }

    let single = cells
        .iter()
        .find(|c| c.docs == 1 && c.threads == 1)
        .unwrap();
    let tax = single.p50.as_nanos() as f64 / direct_p50.as_nanos().max(1) as f64 - 1.0;
    println!(
        "\nsingle-document p50: direct session {} vs 1-thread workspace {} ({:+.1}% service overhead)",
        fmt_dur(direct_p50),
        fmt_dur(single.p50),
        tax * 100.0
    );
    let wide = cells
        .iter()
        .find(|c| c.docs == 64 && c.threads == 4)
        .unwrap();
    let wide_base = cells
        .iter()
        .find(|c| c.docs == 64 && c.threads == 1)
        .unwrap();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "64-document aggregate: {:.0} edits/s at 4 threads vs {:.0} at 1 thread ({:.2}x, {} core(s) available)",
        wide.edits_per_sec,
        wide_base.edits_per_sec,
        wide.edits_per_sec / wide_base.edits_per_sec,
        cores
    );
    if cores < 4 {
        println!(
            "note: fewer than 4 cores — speedups reflect pipelining overlap, not parallel reparse"
        );
    }

    write_json(
        "BENCH_throughput.json",
        quick,
        lines,
        pairs,
        cores,
        direct_p50,
        &cells,
    );
}

/// One grid cell: a fresh workspace, the documents opened, the scripts
/// replayed (warm-up pairs unmeasured), per-edit latencies collected from
/// the shard service times.
fn run_cell(
    registry: &std::sync::Arc<LanguageRegistry>,
    config: &wg_core::SessionConfig,
    docs: usize,
    threads: usize,
    loads: &[DocWorkload],
    warmup_pairs: usize,
) -> Cell {
    let ws = Workspace::with_registry(threads, 64, std::sync::Arc::clone(registry));
    let ids: Vec<DocId> = loads
        .iter()
        .map(|w| ws.open_with(config, &w.text).expect("opens"))
        .collect();

    let total_pairs = loads[0].pairs.len();
    let mut measured_edits = 0u64;
    let mut wall = Duration::ZERO;
    // One round per PAIRS_PER_CMD pairs: every document gets one command
    // carrying that chunk's mutate/restore edits, so the per-command
    // handoff cost is amortized over 2×PAIRS_PER_CMD reparses. Per-edit
    // latency percentiles come from the workspace's own service-time
    // histogram, which records each edit+reparse individually.
    let mut pair_ix = 0;
    while pair_ix < total_pairs {
        let chunk = (pair_ix..total_pairs.min(pair_ix + PAIRS_PER_CMD)).collect::<Vec<_>>();
        let measured = pair_ix >= warmup_pairs;
        let t0 = Instant::now();
        let batch: Vec<(DocId, Vec<EditReq>)> = ids
            .iter()
            .zip(loads)
            .map(|(id, w)| {
                let edits: Vec<EditReq> = chunk
                    .iter()
                    .flat_map(|&p| {
                        let (a, b) = &w.pairs[p];
                        [
                            EditReq::replace(a.start, a.removed, &a.insert),
                            EditReq::replace(b.start, b.removed, &b.insert),
                        ]
                    })
                    .collect();
                (*id, edits)
            })
            .collect();
        for report in ws.apply(batch) {
            let outcome = report.result.expect("scripted edits apply");
            assert!(outcome.incorporated);
            if measured {
                measured_edits += outcome.edits_applied as u64;
            }
        }
        if measured {
            wall += t0.elapsed();
        }
        pair_ix += chunk.len();
    }
    let metrics = ws.shutdown();
    Cell {
        docs,
        threads,
        edits: measured_edits,
        wall,
        edits_per_sec: measured_edits as f64 / wall.as_secs_f64().max(1e-9),
        p50: metrics.p50,
        p95: metrics.p95,
        p99: metrics.p99,
        busy_max: metrics
            .shard_busy
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO),
    }
}

/// Hand-rolled JSON (no serde in the container), matching the
/// `BENCH_incremental.json` conventions: everything in nanoseconds.
fn write_json(
    path: &str,
    quick: bool,
    lines: usize,
    pairs: usize,
    cores: usize,
    direct_p50: Duration,
    cells: &[Cell],
) {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"bench\": \"sec5_throughput\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"cores\": {cores},\n"));
    j.push_str(&format!("  \"lines_per_doc\": {lines},\n"));
    j.push_str(&format!("  \"measured_pairs_per_doc\": {pairs},\n"));
    j.push_str(&format!(
        "  \"direct_single_session_p50_ns\": {},\n",
        direct_p50.as_nanos()
    ));
    j.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let base = cells
            .iter()
            .find(|b| b.docs == c.docs && b.threads == 1)
            .unwrap();
        j.push_str(&format!(
            "    {{\"docs\": {}, \"threads\": {}, \"edits\": {}, \"wall_ns\": {}, \"edits_per_sec\": {:.1}, \"speedup_vs_1_thread\": {:.4}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"busiest_shard_ns\": {}}}{}\n",
            c.docs,
            c.threads,
            c.edits,
            c.wall.as_nanos(),
            c.edits_per_sec,
            c.edits_per_sec / base.edits_per_sec,
            c.p50.as_nanos(),
            c.p95.as_nanos(),
            c.p99.as_nanos(),
            c.busy_max.as_nanos(),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    match std::fs::write(path, &j) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
