//! **Section 5, space comparison** — the paper reports the abstract parse
//! dag consumes ~5% more space than the sentential-form representation,
//! because every node records its parse state, and notes the difference
//! becomes negligible once semantic attributes and presentation data join
//! the nodes.
//!
//! We account bytes for the same trees with and without the per-node state
//! word, across the synthetic suite.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_space`

use wg_bench::print_table;
use wg_core::Session;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c;

fn main() {
    let cfg = simp_c();
    let mut rows = Vec::new();
    for (lines, rate, seed) in [
        (1_000usize, 0.0f64, 1u64),
        (4_000, 0.002, 2),
        (8_000, 0.005, 3),
        (16_000, 0.002, 4),
    ] {
        let program = c_program(&GenSpec::sized(lines, rate, seed));
        let s = Session::new(&cfg, &program.text).expect("parses");
        let stats = s.stats();
        rows.push(vec![
            format!("{lines}"),
            format!("{}", stats.dag_nodes),
            format!("{}", stats.bytes_without_states),
            format!("{}", stats.bytes_with_states),
            format!("{:.1}%", stats.state_overhead_percent()),
        ]);
    }
    print_table(
        "Section 5 — state-word space overhead vs sentential-form baseline",
        &[
            "lines",
            "nodes",
            "bytes w/o states",
            "bytes w/ states",
            "overhead",
        ],
        &rows,
    );
    println!("\n(paper: \"approximately 5% higher, due to the need to record explicit\n states in the nodes\"; the exact figure depends on per-node payload size)");
}
