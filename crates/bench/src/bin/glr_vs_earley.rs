//! **Footnote 4 / Section 3.1** — programming-language grammars are close
//! to LR(1) in practice, so GLR parsing is effectively linear and much
//! faster than Earley's algorithm (Tomita's and Rekers' measurements, which
//! the paper relies on to justify GLR as the substrate).
//!
//! We time batch GLR against the Earley recognizer on the same token
//! streams of the simplified-C grammar (near-LR: only the typedef conflict)
//! at growing sizes.
//!
//! Run: `cargo run --release -p wg-bench --bin glr_vs_earley`

use wg_bench::{fmt_dur, print_table, time_once, tokenize};
use wg_dag::DagArena;
use wg_earley::EarleyParser;
use wg_glr::GlrParser;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c;

fn main() {
    let cfg = simp_c();
    let glr = GlrParser::new(cfg.grammar(), cfg.table());
    let earley = EarleyParser::new(cfg.grammar());

    let mut rows = Vec::new();
    for lines in [100usize, 200, 400, 800, 1600] {
        let program = c_program(&GenSpec::sized(lines, 0.01, 5));
        let tokens = tokenize(&cfg, &program.text);
        let pairs: Vec<(wg_grammar::Terminal, &str)> =
            tokens.iter().map(|(t, s)| (*t, s.as_str())).collect();
        let terms: Vec<wg_grammar::Terminal> = tokens.iter().map(|(t, _)| *t).collect();

        let (_d, t_glr) = time_once(|| {
            let mut arena = DagArena::new();
            glr.parse(&mut arena, pairs.iter().copied())
                .expect("parses")
        });
        let (stats, t_earley) = time_once(|| earley.run(&terms));
        assert!(stats.accepted, "Earley agrees the input parses");

        rows.push(vec![
            format!("{}", terms.len()),
            fmt_dur(t_glr),
            fmt_dur(t_earley),
            format!("{:.1}x", t_earley.as_secs_f64() / t_glr.as_secs_f64()),
            format!("{}", stats.items),
        ]);
    }
    print_table(
        "Footnote 4 — batch GLR vs Earley on the near-LR C grammar",
        &["tokens", "GLR", "Earley", "Earley/GLR", "Earley items"],
        &rows,
    );
    println!(
        "\n(both are linear here — the grammar is near-LR — and note the GLR\n column additionally *builds the full parse dag* while Earley only\n recognizes; the decisive case is ambiguity, below)"
    );

    // On a genuinely ambiguous grammar Earley's item sets grow with input
    // position while GLR's local packing keeps the work bounded.
    let amb = wg_langs::toys::ambiguous_expr(false);
    let amb_table = wg_lrtable::LrTable::build(&amb, wg_lrtable::TableKind::Lalr);
    let amb_glr = GlrParser::new(&amb, &amb_table);
    let amb_earley = EarleyParser::new(&amb);
    let num = amb.terminal_by_name("num").expect("num");
    let plus = amb.terminal_by_name("+").expect("+");
    let mut rows = Vec::new();
    for n in [8usize, 16, 32, 64] {
        let mut terms = vec![num];
        let mut pairs = vec![(num, "1")];
        for _ in 0..n {
            terms.push(plus);
            terms.push(num);
            pairs.push((plus, "+"));
            pairs.push((num, "1"));
        }
        let mut dag_nodes = 0;
        let (_d, t_glr) = time_once(|| {
            let mut arena = DagArena::new();
            let r = amb_glr
                .parse(&mut arena, pairs.iter().copied())
                .expect("parses");
            dag_nodes = arena.len();
            r
        });
        let (stats, t_earley) = time_once(|| amb_earley.run(&terms));
        assert!(stats.accepted);
        rows.push(vec![
            format!("{}", terms.len()),
            fmt_dur(t_glr),
            format!("{dag_nodes}"),
            fmt_dur(t_earley),
            format!("{}", stats.items),
        ]);
    }
    print_table(
        "Footnote 4 — GLR vs Earley on the ambiguous grammar E -> E + E | num",
        &[
            "tokens",
            "GLR (full dag)",
            "dag nodes",
            "Earley (recognize)",
            "Earley items",
        ],
        &rows,
    );
    println!(
        "
(the packed forest for this worst-case grammar is Θ(n³), so GLR's\n cost here is the *output's* size; the Earley column recognizes only)"
    );
}
