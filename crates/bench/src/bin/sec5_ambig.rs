//! **Section 5, ambiguous-region reconstruction** — the paper's restriction
//! that a non-deterministically parsed region is reconstructed *in its
//! entirety* whenever it contains an edit site costs "well under 1%"
//! additional time, independent of program, file, or region location,
//! because such regions span only a few nodes.
//!
//! We compare mean reparse latency for edits *inside* ambiguous regions
//! against edits in plain statements of the same program, and report the
//! extra time attributable to region reconstruction over a whole edit
//! session.
//!
//! Run: `cargo run --release -p wg-bench --bin sec5_ambig [lines]`

use std::time::{Duration, Instant};
use wg_bench::{fmt_dur, print_table};
use wg_core::Session;
use wg_langs::generate::{c_program, GenSpec};
use wg_langs::simp_c;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);
    let cfg = simp_c();
    let program = c_program(&GenSpec::sized(lines, 0.01, 21));
    let text = program.text.clone();

    // Edit sites: the argument identifier of ambiguous statements
    // ("head (objN);") vs identifiers of plain assignments.
    let amb_sites: Vec<(usize, usize)> = find_after(&text, " (obj", 3);
    let plain_sites: Vec<(usize, usize)> = find_after(&text, "  var", 3)
        .into_iter()
        .chain(find_after(&text, "\nvar", 3))
        .collect();
    assert!(!amb_sites.is_empty() && !plain_sites.is_empty());

    let mut s = Session::new(&cfg, &text).expect("parses");
    let bench = |s: &mut Session, sites: &[(usize, usize)], rounds: usize| -> Duration {
        let mut total = Duration::ZERO;
        for r in 0..rounds {
            let (start, len) = sites[r % sites.len()];
            let original = s.text()[start..start + len].to_string();
            let t0 = Instant::now();
            s.edit(start, len, "zzz");
            assert!(s.reparse().expect("ok").incorporated, "edit at {start}");
            s.edit(start, 3, &original);
            assert!(s.reparse().expect("ok").incorporated);
            total += t0.elapsed();
        }
        total / (2 * rounds) as u32
    };

    let rounds = 100;
    let t_plain = bench(&mut s, &plain_sites, rounds);
    let t_amb = bench(&mut s, &amb_sites, rounds);

    // Session-level view: with E edits of which a fraction p hit ambiguous
    // regions, the extra time over an all-deterministic session is
    // p·(t_amb - t_plain)/t_plain.
    let p = program.ambiguous_sites as f64 / program.lines as f64;
    let extra = 100.0 * p * (t_amb.as_secs_f64() - t_plain.as_secs_f64()) / t_plain.as_secs_f64();

    print_table(
        "Section 5 — reconstruction of non-deterministic regions",
        &["edit site", "mean reparse"],
        &[
            vec!["plain statement".into(), fmt_dur(t_plain)],
            vec!["inside ambiguous region".into(), fmt_dur(t_amb)],
        ],
    );
    println!(
        "\nambiguous statements: {}/{} ({:.1}% of items)",
        program.ambiguous_sites,
        program.lines,
        100.0 * p
    );
    println!(
        "session-level extra reconstruction time: {extra:.2}% (paper: well under 1%,\n independent of program and region location)"
    );
}

/// Byte ranges of the alphanumeric runs right after each occurrence of
/// `pat` (the rest of the identifier/number being edited).
fn find_after(text: &str, pat: &str, _len: usize) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(pat) {
        let start = from + pos + pat.len();
        let mut end = start;
        while end < bytes.len() && bytes[end].is_ascii_alphanumeric() {
            end += 1;
        }
        if end > start {
            out.push((start, end - start));
        }
        from = start;
    }
    out
}
