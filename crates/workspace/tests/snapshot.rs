//! Model-based snapshot-isolation oracle: one writer, unbounded readers.
//!
//! The writer applies a randomized edit script to a live [`Session`],
//! publishing a snapshot every few operations; reader threads concurrently
//! pick pinned snapshots and check **every** answer (`info_at` across all
//! byte offsets, `uses_of` for every declared name) against a batch
//! oracle — a fresh session built from the text captured at the pinned
//! version. Any tearing (a reader observing a mix of two versions) or any
//! reclamation bug (a reader observing a recycled node slot) surfaces as
//! an answer the oracle cannot produce.
//!
//! The soak length is `WG_SNAPSHOT_OPS` (default 10 000) so the sanitizer
//! CI lane can run the same test at reduced iterations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use wg_core::{Session, SessionConfig, Snapshot};
use wg_langs::simp_c;
use wg_sem::{SemState, Strictness};
use wg_workspace::{EditReq, SemAnswer, SemQuery, Workspace};

fn soak_ops() -> usize {
    std::env::var("WG_SNAPSHOT_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// Published checkpoints readers verify against: the pinned snapshot plus
/// the exact text of the version it reflects.
type Checkpoints = Arc<Mutex<Vec<(Arc<Snapshot>, String)>>>;

/// Serial model of an `int NAME; ` declaration list (the same shape the
/// steal model uses): every edit is mirrored here so the text behind any
/// published version is known exactly.
struct Model {
    names: Vec<String>,
}

impl Model {
    fn new(decls: usize) -> Model {
        Model {
            names: (0..decls).map(|j| format!("v{j}")).collect(),
        }
    }

    fn text(&self) -> String {
        self.names
            .iter()
            .map(|n| format!("int {n}; "))
            .collect::<String>()
    }

    fn offset_of(&self, decl: usize) -> usize {
        self.names[..decl].iter().map(|n| n.len() + 6).sum()
    }

    /// Mutates the model and returns the matching session edit.
    fn random_edit(&mut self, rng: &mut StdRng, fresh: &mut u64) -> (usize, usize, String) {
        let roll: f64 = rng.random();
        *fresh += 1;
        let name = format!("w{fresh}");
        if roll < 0.8 || self.names.len() < 4 {
            let j = rng.random_range(0..self.names.len());
            let edit = (self.offset_of(j) + 4, self.names[j].len(), name.clone());
            self.names[j] = name;
            edit
        } else if roll < 0.9 {
            let j = rng.random_range(0..self.names.len() + 1);
            let edit = (self.offset_of(j), 0, format!("int {name}; "));
            self.names.insert(j, name);
            edit
        } else {
            let j = rng.random_range(0..self.names.len());
            let edit = (self.offset_of(j), self.names[j].len() + 6, String::new());
            self.names.remove(j);
            edit
        }
    }
}

fn oracle_session(cfg: &SessionConfig, text: &str) -> Session {
    let mut s = Session::new(cfg, text).expect("oracle parse");
    s.attach_semantics(Box::new(SemState::new(
        cfg.grammar(),
        Strictness::RequireBinding,
    )));
    s
}

/// Exhaustively compares one pinned snapshot against the batch oracle for
/// the text it reflects.
fn verify_snapshot(cfg: &SessionConfig, snap: &Snapshot, text: &str) {
    let oracle = oracle_session(cfg, text);
    assert_eq!(snap.token_count(), oracle.token_count(), "text {text:?}");
    for off in 0..text.len() {
        assert_eq!(
            snap.info_at(off),
            oracle.semantic_info_at(off),
            "snapshot diverged from the batch oracle at offset {off} of {text:?}"
        );
    }
    for name in text.split(' ').filter(|w| w.ends_with(';')) {
        let name = name.trim_end_matches(';');
        assert_eq!(
            snap.uses_of(name).len(),
            oracle.semantic_uses_of(name).len(),
            "use count of {name} diverged for {text:?}"
        );
    }
}

/// How many checkpoints stay pinned at once (the reader working set).
const KEEP: usize = 6;

#[test]
fn concurrent_readers_match_batch_oracle_at_pinned_versions() {
    const READERS: usize = 4;
    const CHECKPOINT_EVERY: usize = 25;
    let ops = soak_ops();
    let cfg = Arc::new(simp_c());
    let checkpoints: Checkpoints = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicBool::new(false));
    let verified = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let cfg = Arc::clone(&cfg);
            let checkpoints = Arc::clone(&checkpoints);
            let done = Arc::clone(&done);
            let verified = Arc::clone(&verified);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + r as u64);
                while !done.load(Ordering::Acquire) {
                    // Pin a random published version (the Arc clone shares
                    // the pin — reading costs the writer nothing extra).
                    let picked = {
                        let cps = checkpoints.lock().unwrap();
                        if cps.is_empty() {
                            None
                        } else {
                            let ix = rng.random_range(0..cps.len());
                            Some((Arc::clone(&cps[ix].0), cps[ix].1.clone()))
                        }
                    };
                    let Some((snap, text)) = picked else {
                        std::thread::yield_now();
                        continue;
                    };
                    verify_snapshot(&cfg, &snap, &text);
                    verified.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The writer: randomized edits, a publish every few ops, at most KEEP
    // checkpoints pinned at a time.
    let mut session = oracle_session(&cfg, &Model::new(12).text());
    let mut model = Model::new(12);
    let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
    let mut fresh = 0u64;
    let mut max_backlog = 0usize;
    for op in 0..ops {
        let (start, removed, insert) = model.random_edit(&mut rng, &mut fresh);
        session.edit(start, removed, &insert);
        let out = session.reparse().expect("reparse is infallible");
        assert!(out.incorporated, "model edits are always valid");
        if op % CHECKPOINT_EVERY == 0 {
            let snap = session.publish();
            assert_eq!(
                snap.version(),
                session.arena().published_version(),
                "publish stamps the arena's current version"
            );
            let mut cps = checkpoints.lock().unwrap();
            if cps.len() == KEEP {
                cps.remove(0);
            }
            cps.push((snap, model.text()));
            // Distinct pinned versions never exceed the checkpoint window
            // plus the session's own cached snapshot plus one evicted
            // checkpoint still being verified per reader — pins track
            // live snapshots, nothing leaks.
            assert!(
                session.arena().live_pins() <= KEEP + 1 + READERS,
                "pin registry leaked: {} live pins",
                session.arena().live_pins()
            );
        }
        max_backlog = max_backlog.max(session.arena().deferred_free_backlog());
    }
    done.store(true, Ordering::Release);
    for r in readers {
        r.join().expect("reader thread panicked");
    }
    assert!(
        verified.load(Ordering::Relaxed) >= READERS,
        "readers never got through a verification pass"
    );

    // Post-soak: once every snapshot is dropped, the deferred-free backlog
    // must drain completely — epoch reclamation holds slots exactly as
    // long as a live pin can see them, not forever.
    checkpoints.lock().unwrap().clear();
    session.edit(0, 0, "int zz; "); // invalidates the cached snapshot
    session.reparse().expect("reparse is infallible");
    let root = session.root();
    session.arena_mut().collect_garbage(root);
    assert_eq!(session.arena().live_pins(), 0, "all pins released");
    assert_eq!(
        session.arena().deferred_free_backlog(),
        0,
        "backlog must drain to zero once no snapshot pins a version \
         (max during soak: {max_backlog})"
    );
}

#[test]
fn workspace_snapshot_reads_bypass_the_mailbox_under_edit_load() {
    const READERS: usize = 3;
    const ROUNDS: usize = 60;
    let cfg = simp_c();
    let ws = Arc::new(Workspace::new(2, 32));
    // `int stable; ` stays at offset 0..12 in every version; edits only
    // ever touch the document's tail.
    let doc = ws
        .open_with_semantics(&cfg, "int stable; int tail0; ")
        .unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let ws = Arc::clone(&ws);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !done.load(Ordering::Acquire) {
                    match ws.query(doc, SemQuery::ResolveAt(4)).expect("query") {
                        SemAnswer::Resolution(Some(info)) => {
                            assert_eq!(info.name, "stable");
                            assert!(info.kind.is_some(), "declared in every version");
                        }
                        other => panic!("unexpected answer {other:?}"),
                    }
                    served += 1;
                }
                served
            })
        })
        .collect();
    let mut tail = "int tail0; ".to_string();
    for round in 0..ROUNDS {
        let new_tail = format!("int tail{round}; ");
        let edit = EditReq::replace(12, tail.len(), &new_tail);
        tail = new_tail;
        let r = ws.apply(vec![(doc, vec![edit])]);
        assert!(r[0].result.as_ref().expect("apply").incorporated);
        // Read-your-writes through the snapshot path: the apply reply was
        // preceded by a publish, so the new tail name resolves.
        match ws.query(doc, SemQuery::ResolveAt(16)).expect("query") {
            SemAnswer::Resolution(Some(info)) => {
                assert_eq!(info.name, format!("tail{round}"));
            }
            other => panic!("round {round}: unexpected answer {other:?}"),
        }
    }
    done.store(true, Ordering::Release);
    let served: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(served > 0, "concurrent readers made no progress");
    let m = Arc::try_unwrap(ws).ok().expect("sole owner").shutdown();
    assert_eq!(
        m.snapshot_reads, m.queries,
        "every query had a published snapshot to read from"
    );
    // Sampled at the last publish: the doc's own cached pin, plus at most
    // one transient pin per reader that was still holding the outgoing
    // version's snapshot at that instant (the gauge is racy by contract).
    assert!(
        (1..=1 + READERS).contains(&m.pinned_versions),
        "pinned gauge out of range: {}",
        m.pinned_versions
    );
    assert_eq!(m.docs_poisoned, 0);
}
