//! Grammar hot-swap under a live edit stream.
//!
//! The model test of the versioned-table protocol: a workspace document
//! keeps editing while [`Workspace::update_grammar`] installs a new table
//! epoch. The broadcast nudge is just another mailbox command, so it
//! lands *between* the document's queued applies in FIFO order — the
//! session adopts the new table at that reparse and every later edit may
//! use syntax only the new grammar accepts. The final text and tree must
//! be byte-identical to a fresh session opened on the new grammar.

use wg_core::{Session, SessionConfig};
use wg_grammar::{Grammar, GrammarBuilder, GrammarDelta, SeqKind, Symbol};
use wg_lexer::LexerDef;
use wg_workspace::{EditReq, Workspace, WorkspaceError};

/// `prog = stmt+ ; stmt -> id ;` — empty statements are a syntax error
/// until the delta below makes them legal.
fn stmt_grammar(name: &str) -> Grammar {
    let mut b = GrammarBuilder::new(name);
    let id = b.terminal("id");
    let semi = b.terminal(";");
    let stmt = b.nonterminal("stmt");
    let prog = b.nonterminal("prog");
    b.prod(stmt, vec![Symbol::T(id), Symbol::T(semi)]);
    b.sequence(prog, Symbol::N(stmt), SeqKind::Plus, None);
    b.start(prog);
    b.build().unwrap()
}

fn stmt_lexdef() -> LexerDef {
    let mut lx = LexerDef::new();
    lx.rule("id", "[a-zA-Z_][a-zA-Z0-9_]*").unwrap();
    lx.literal(";", ";");
    lx.skip("ws", "[ \\t\\n]+").unwrap();
    lx
}

/// A delta making empty statements legal: `stmt -> ;`.
fn semi_only_delta(g: &Grammar) -> GrammarDelta {
    let semi = g.terminal_by_name(";").unwrap();
    let stmt = g.nonterminal_by_name("stmt").unwrap();
    let mut d = GrammarDelta::new(g);
    d.add_production(stmt, vec![Symbol::T(semi)]);
    d
}

#[test]
fn live_session_survives_update_grammar_mid_edit_stream() {
    let ws = Workspace::new(2, 64);
    let g = stmt_grammar("stmts");
    let delta = semi_only_delta(&g);
    let config = ws
        .registry()
        .get_or_compile(g.clone(), stmt_lexdef())
        .unwrap();
    let doc = ws.open_with(&config, "a; b;").unwrap();

    // Phase 1: edits under the old grammar, left in flight (not waited)
    // so the hot-swap genuinely interleaves with the stream.
    let pending = ws
        .apply_async(doc, vec![EditReq::insert(5, " c;")])
        .unwrap();

    // The swap: one registry-side incremental table derivation, then a
    // nudge through every document mailbox, behind the apply above.
    let report = ws.update_grammar(&delta).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.sessions_swapped, 1, "the one open doc adopted");
    assert_eq!(report.sessions_pending, 0);
    assert!(
        !report.stats.full_rebuild,
        "a one-production delta must take the incremental path"
    );

    let first = pending.wait();
    assert!(first.result.unwrap().incorporated, "old-syntax edit landed");

    // Phase 2: edits legal only under the new grammar (bare `;`).
    let reports = ws.apply(vec![(doc, vec![EditReq::insert(8, " ; ;")])]);
    let out = reports[0].result.as_ref().unwrap();
    assert!(
        out.incorporated,
        "post-swap edits may use new-grammar syntax: {out:?}"
    );

    // The surviving document is byte- and tree-identical to a fresh
    // session opened on the post-delta grammar.
    let text = ws.text(doc).unwrap();
    assert_eq!(text, "a; b; c; ; ;");
    let (new_g, _) = g.apply_delta(&delta).unwrap();
    let fresh_cfg = SessionConfig::new(new_g, stmt_lexdef()).unwrap();
    let fresh = Session::new(&fresh_cfg, &text).unwrap();
    assert_eq!(
        ws.dump(doc).unwrap(),
        fresh.dump(),
        "hot-swapped tree diverges from a from-scratch parse on the new grammar"
    );

    let metrics = ws.shutdown();
    assert_eq!(metrics.grammar_updates, 1);
    assert!(metrics.grammar_swaps >= 1, "{}", metrics.grammar_swaps);
    assert_eq!(metrics.table_epoch, 1);
    assert_eq!(metrics.docs_poisoned, 0);
}

#[test]
fn broadcast_skips_documents_of_other_languages() {
    let ws = Workspace::new(2, 16);
    let g_a = stmt_grammar("lang_a");
    let g_b = stmt_grammar("lang_b"); // distinct fingerprint, own slot
    let cfg_a = ws
        .registry()
        .get_or_compile(g_a.clone(), stmt_lexdef())
        .unwrap();
    let cfg_b = ws.registry().get_or_compile(g_b, stmt_lexdef()).unwrap();
    let doc_a = ws.open_with(&cfg_a, "x;").unwrap();
    let doc_b = ws.open_with(&cfg_b, "y;").unwrap();

    let report = ws.update_grammar(&semi_only_delta(&g_a)).unwrap();
    assert_eq!(report.sessions_swapped, 1, "only the lang_a doc swaps");
    assert_eq!(report.sessions_pending, 1, "the lang_b doc no-ops");

    // Both documents still serve edits; lang_b never saw an epoch change.
    let reports = ws.apply(vec![
        (doc_a, vec![EditReq::insert(2, " ;")]),
        (doc_b, vec![EditReq::insert(2, " z;")]),
    ]);
    assert!(reports.iter().all(|r| r.result.is_ok()));
    assert_eq!(ws.text(doc_a).unwrap(), "x; ;");
    assert_eq!(ws.text(doc_b).unwrap(), "y; z;");
    ws.shutdown();
}

#[test]
fn rejecting_text_stays_pending_and_keeps_serving() {
    let ws = Workspace::new(1, 16);
    let g = stmt_grammar("strict");
    let cfg = ws
        .registry()
        .get_or_compile(g.clone(), stmt_lexdef())
        .unwrap();
    let doc = ws.open_with(&cfg, "a;").unwrap();

    // Replace `stmt -> id ;` with `stmt -> ;`: the committed text `a;`
    // has no parse under the new grammar, so adoption must fail *without*
    // damaging the live tree.
    let semi = g.terminal_by_name(";").unwrap();
    let stmt = g.nonterminal_by_name("stmt").unwrap();
    let id_semi = (0..g.num_productions())
        .map(wg_grammar::ProdId::from_index)
        .find(|&p| {
            let pr = g.production(p);
            pr.lhs() == stmt && pr.rhs().len() == 2
        })
        .unwrap();
    let mut d = GrammarDelta::new(&g);
    d.remove_production(id_semi);
    d.add_production(stmt, vec![Symbol::T(semi)]);

    let report = ws.update_grammar(&d).unwrap();
    assert_eq!(report.sessions_swapped, 0);
    assert_eq!(report.sessions_pending, 1);

    // The session keeps serving old-grammar edits on the old table.
    let reports = ws.apply(vec![(doc, vec![EditReq::insert(2, " b;")])]);
    assert!(reports[0].result.as_ref().unwrap().incorporated);
    assert_eq!(ws.text(doc).unwrap(), "a; b;");

    let metrics = ws.shutdown();
    assert_eq!(metrics.grammar_updates, 1);
    assert_eq!(metrics.grammar_swaps, 0);
    assert_eq!(metrics.docs_poisoned, 0);
}

#[test]
fn unknown_base_is_a_clean_error() {
    let ws = Workspace::new(1, 16);
    let g = stmt_grammar("orphan");
    // The grammar was never opened through this workspace's registry.
    let err = ws.update_grammar(&semi_only_delta(&g)).unwrap_err();
    assert!(matches!(err, WorkspaceError::GrammarUpdate(_)), "{err}");
    let metrics = ws.shutdown();
    assert_eq!(metrics.grammar_updates, 0);
    assert_eq!(metrics.table_epoch, 0);
}
