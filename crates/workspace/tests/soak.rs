//! Multi-threaded workspace soak and failure-isolation tests.
//!
//! The model-based soak drives 64 documents with 10k randomized edits
//! (renames, statement insertions, statement deletions) through a 4-shard
//! workspace while mirroring every edit into a plain per-document model,
//! then checks the workspace text against the model byte-for-byte — the
//! strongest available witness that per-document ordering held and no
//! report was lost.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use wg_grammar::{Grammar, GrammarBuilder, SeqKind, Symbol};
use wg_lexer::LexerDef;
use wg_workspace::{DocId, EditReq, Workspace, WorkspaceError};

/// The tiny statement language `prog = (id ;)+`.
fn stmt_grammar() -> Grammar {
    let mut b = GrammarBuilder::new("stmts");
    let id = b.terminal("id");
    let semi = b.terminal(";");
    let stmt = b.nonterminal("stmt");
    let prog = b.nonterminal("prog");
    b.prod(stmt, vec![Symbol::T(id), Symbol::T(semi)]);
    b.sequence(prog, Symbol::N(stmt), SeqKind::Plus, None);
    b.start(prog);
    b.build().unwrap()
}

fn stmt_lexdef() -> LexerDef {
    let mut lx = LexerDef::new();
    lx.rule("id", "[a-zA-Z_][a-zA-Z0-9_]*").unwrap();
    lx.literal(";", ";");
    lx.skip("ws", "[ \\t\\n]+").unwrap();
    lx
}

/// A per-document model: the statement identifiers, in order. The text is
/// `"{id}; "` per statement; offsets are derivable exactly.
struct Model {
    idents: Vec<String>,
}

impl Model {
    fn new(doc_ix: usize, stmts: usize) -> Model {
        Model {
            idents: (0..stmts).map(|j| format!("d{doc_ix}s{j}")).collect(),
        }
    }

    fn text(&self) -> String {
        self.idents
            .iter()
            .map(|s| format!("{s}; "))
            .collect::<String>()
    }

    fn offset_of(&self, stmt: usize) -> usize {
        self.idents[..stmt].iter().map(|s| s.len() + 2).sum()
    }

    /// Produces a random valid edit and applies it to the model.
    fn random_edit(&mut self, rng: &mut StdRng, fresh: &mut u64) -> EditReq {
        let roll: f64 = rng.random();
        *fresh += 1;
        let name = format!("w{fresh}");
        if roll < 0.8 || self.idents.len() < 6 {
            // Rename a statement's identifier.
            let j = rng.random_range(0..self.idents.len());
            let req = EditReq::replace(self.offset_of(j), self.idents[j].len(), &name);
            self.idents[j] = name;
            req
        } else if roll < 0.9 {
            // Insert a whole statement at a boundary.
            let j = rng.random_range(0..self.idents.len() + 1);
            let req = EditReq::insert(self.offset_of(j), &format!("{name}; "));
            self.idents.insert(j, name);
            req
        } else {
            // Delete a whole statement.
            let j = rng.random_range(0..self.idents.len());
            let req = EditReq::delete(self.offset_of(j), self.idents[j].len() + 2);
            self.idents.remove(j);
            req
        }
    }
}

#[test]
fn soak_64_docs_10k_randomized_edits() {
    const DOCS: usize = 64;
    const TARGET_EDITS: usize = 10_000;
    let ws = Workspace::new(4, 32);
    let cfg = ws
        .registry()
        .get_or_compile(stmt_grammar(), stmt_lexdef())
        .unwrap();
    let mut models: Vec<Model> = (0..DOCS).map(|i| Model::new(i, 12)).collect();
    let docs: Vec<DocId> = models
        .iter()
        .map(|m| ws.open_with(&cfg, &m.text()).unwrap())
        .collect();
    assert_eq!(ws.registry().table_builds(), 1);
    assert_eq!(ws.metrics().docs_open, DOCS);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut fresh = 0u64;
    let mut submitted = 0usize;
    let mut reports_seen = 0usize;
    let mut expected_seq: HashMap<DocId, u64> = HashMap::new();
    while submitted < TARGET_EDITS {
        // Each round touches a random subset of documents with 1–3 edits.
        let mut batch = Vec::new();
        for (i, doc) in docs.iter().enumerate() {
            if rng.random_bool(0.4) {
                let n = rng.random_range(1..4usize);
                let edits: Vec<EditReq> = (0..n)
                    .map(|_| models[i].random_edit(&mut rng, &mut fresh))
                    .collect();
                submitted += edits.len();
                batch.push((*doc, edits));
            }
        }
        for report in ws.apply(batch) {
            reports_seen += 1;
            let outcome = report.result.expect("randomized valid edits must apply");
            let want = expected_seq.entry(report.doc).or_insert(0);
            *want += 1;
            assert_eq!(
                outcome.seq, *want,
                "{}: command processed out of order",
                report.doc
            );
            assert!(outcome.incorporated, "{}: edit refused", report.doc);
        }
    }
    assert!(reports_seen > 0);

    // Byte-for-byte agreement with the serial model: ordering held and
    // nothing was dropped on any shard.
    for (i, doc) in docs.iter().enumerate() {
        assert_eq!(
            ws.text(*doc).unwrap(),
            models[i].text(),
            "doc {i} diverged from the serial model"
        );
    }
    let m = ws.shutdown();
    assert_eq!(m.edits_applied as usize, submitted, "no lost edits");
    assert_eq!(m.docs_poisoned, 0);
    assert_eq!(m.edits_refused, 0);
    assert!(m.p50 > std::time::Duration::ZERO);
    assert!(m.p99 >= m.p95 && m.p95 >= m.p50);
    assert!(
        m.shard_busy.iter().filter(|d| !d.is_zero()).count() >= 2,
        "64 docs must spread over multiple shards: {:?}",
        m.shard_busy
    );
}

#[test]
fn panicking_reparse_poisons_only_its_document() {
    let ws = Workspace::new(2, 16);
    let cfg = ws
        .registry()
        .get_or_compile(stmt_grammar(), stmt_lexdef())
        .unwrap();
    // Four documents on 2 shards: by pigeonhole some pair shares a shard.
    // Which pair is not fixed — open commands themselves can be stolen, so
    // ownership is dynamic from the first submit — but it is stable here
    // (no commands are in flight), so pick any co-owned pair.
    let docs: Vec<DocId> = (0..4)
        .map(|i| ws.open_with(&cfg, &format!("alpha{i}; beta{i}; ")).unwrap())
        .collect();
    let (victim, shardmate) = docs
        .iter()
        .flat_map(|&a| docs.iter().map(move |&b| (a, b)))
        .find(|&(a, b)| a != b && ws.shard_of(a) == ws.shard_of(b))
        .expect("two docs share a shard");

    // One batch: an out-of-bounds edit (panics inside TextBuffer) on the
    // victim plus a valid edit on its shard neighbour.
    let reports = ws.apply(vec![
        (victim, vec![EditReq::replace(1 << 30, 1, "x")]),
        (shardmate, vec![EditReq::replace(0, 5, "gamma")]),
    ]);
    assert_eq!(
        reports[0].result,
        Err(WorkspaceError::Poisoned(victim)),
        "the panicking edit poisons its document"
    );
    let ok = reports[1].result.as_ref().expect("shard keeps serving");
    assert!(ok.incorporated);

    // The victim is permanently dead; everyone else keeps working.
    let again = ws.apply(vec![(victim, vec![EditReq::insert(0, "x; ")])]);
    assert_eq!(again[0].result, Err(WorkspaceError::Poisoned(victim)));
    assert_eq!(ws.text(victim), None);
    for &doc in docs.iter().filter(|&&d| d != victim) {
        let r = ws.apply(vec![(doc, vec![EditReq::insert(0, "zz; ")])]);
        assert!(r[0].result.is_ok(), "{doc} must survive the poisoning");
    }
    let m = ws.metrics();
    assert_eq!(m.docs_poisoned, 1);
    assert_eq!(m.docs_open, 3);
    // Closing the poisoned id clears the tombstone (it was already gone).
    assert!(!ws.close(victim));
    ws.shutdown();
}

#[test]
fn shutdown_with_queued_work_finishes_old() {
    // Call shutdown() while commands are still queued on the single slow
    // shard: accepted work must complete; nothing may be dropped.
    let ws = Workspace::new(1, 64);
    let cfg = ws
        .registry()
        .get_or_compile(stmt_grammar(), stmt_lexdef())
        .unwrap();
    // A stall document keeps the single worker busy with one long command
    // (alternating edits at sites too far apart to coalesce, so every edit
    // pays its own reparse cycle) while the commands below pile up — the
    // depth probe would otherwise race a worker fast enough to drain all
    // forty commands first.
    let stall_text = format!("alpha; {}omega; ", "filler; ".repeat(12));
    let omega = stall_text.find("omega").unwrap();
    let stall = ws.open_with(&cfg, &stall_text).unwrap();
    let doc = ws.open_with(&cfg, "alpha; beta; gamma; ").unwrap();
    let stall_edits: Vec<EditReq> = (0..400)
        .map(|i| match i % 4 {
            0 => EditReq::replace(0, 5, "zzzzz"),
            1 => EditReq::replace(omega, 5, "yyyyy"),
            2 => EditReq::replace(0, 5, "alpha"),
            _ => EditReq::replace(omega, 5, "omega"),
        })
        .collect();
    let p_stall = ws.apply_async(stall, stall_edits).unwrap();
    let mut pending = Vec::new();
    for _ in 0..40 {
        let edits = vec![
            EditReq::replace(0, 5, "zzzzz"),
            EditReq::replace(0, 5, "alpha"),
        ];
        pending.push(ws.apply_async(doc, edits).unwrap());
    }
    let depth = ws.metrics().queue_depth;
    assert!(depth > 0, "commands must still be queued");
    let m = ws.shutdown(); // drains the non-empty queue, then joins
    assert!(p_stall.wait().result.is_ok());
    for p in pending {
        let r = p.wait();
        assert!(r.result.is_ok(), "accepted command was dropped: {r:?}");
    }
    assert_eq!(m.edits_applied, 480);
    assert_eq!(m.queue_depth, 0, "nothing left behind");
}

#[test]
fn concurrent_caller_threads_share_the_workspace() {
    // The workspace front end is `Sync`: eight caller threads batch edits
    // into their own documents concurrently through one shared reference.
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<Workspace>();

    let ws = Arc::new(Workspace::new(4, 16));
    let cfg = ws
        .registry()
        .get_or_compile(stmt_grammar(), stmt_lexdef())
        .unwrap();
    let mut handles = Vec::new();
    for t in 0..8 {
        let ws = Arc::clone(&ws);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut model = Model::new(t, 10);
            let doc = ws.open_with(&cfg, &model.text()).unwrap();
            let mut rng = StdRng::seed_from_u64(t as u64);
            let mut fresh = (t as u64 + 1) * 1_000_000;
            for _ in 0..50 {
                let edit = model.random_edit(&mut rng, &mut fresh);
                let r = ws.apply(vec![(doc, vec![edit])]);
                assert!(r[0].result.as_ref().unwrap().incorporated);
            }
            assert_eq!(ws.text(doc).unwrap(), model.text());
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let ws = Arc::into_inner(ws).expect("all callers joined");
    assert_eq!(ws.registry().table_builds(), 1);
    let m = ws.shutdown();
    assert_eq!(m.edits_applied, 8 * 50);
    assert_eq!(m.docs_open, 8);
}
