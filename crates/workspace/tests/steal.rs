//! Work-stealing, migration, and edit-coalescing tests.
//!
//! The model-based test floods the documents initially homed on one shard
//! with random interleaved edits and semantic queries while the other
//! shards sit idle, so they must steal documents to make progress; every
//! reply, per-document sequence number, and final text is checked against
//! a serial model — ownership migration must be invisible to callers.
//! The coalescing tests assert the headline economics: a burst of
//! self-cancelling edits collapses to a handful of reparse cycles with a
//! byte-identical final text *and tree*.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use wg_langs::simp_c;
use wg_workspace::{DocId, EditReq, PendingApply, SemAnswer, SemQuery, Workspace, WorkspaceError};

/// A per-document model of `int {name}; ` declaration lists — every edit
/// the test submits is mirrored here, and the workspace text must agree
/// byte-for-byte at the end.
struct Model {
    names: Vec<String>,
}

impl Model {
    fn new(doc_ix: usize, decls: usize) -> Model {
        Model {
            names: (0..decls).map(|j| format!("d{doc_ix}v{j}")).collect(),
        }
    }

    fn text(&self) -> String {
        self.names
            .iter()
            .map(|n| format!("int {n}; "))
            .collect::<String>()
    }

    fn offset_of(&self, decl: usize) -> usize {
        self.names[..decl].iter().map(|n| n.len() + 6).sum()
    }

    fn random_edit(&mut self, rng: &mut StdRng, fresh: &mut u64) -> EditReq {
        let roll: f64 = rng.random();
        *fresh += 1;
        let name = format!("w{fresh}");
        if roll < 0.8 || self.names.len() < 4 {
            let j = rng.random_range(0..self.names.len());
            let req = EditReq::replace(self.offset_of(j) + 4, self.names[j].len(), &name);
            self.names[j] = name;
            req
        } else if roll < 0.9 {
            let j = rng.random_range(0..self.names.len() + 1);
            let req = EditReq::insert(self.offset_of(j), &format!("int {name}; "));
            self.names.insert(j, name);
            req
        } else {
            let j = rng.random_range(0..self.names.len());
            let req = EditReq::delete(self.offset_of(j), self.names[j].len() + 6);
            self.names.remove(j);
            req
        }
    }

    /// Byte offset of some declared name (query target).
    fn some_name_offset(&self, rng: &mut StdRng) -> (usize, String) {
        let j = rng.random_range(0..self.names.len());
        (self.offset_of(j) + 4, self.names[j].clone())
    }
}

#[test]
fn model_random_steals_edits_queries_fifo_survives_migration() {
    const DOCS: usize = 64;
    const HOT: usize = 16; // the documents initially homed on shard 0
    const ROUNDS: usize = 120;
    let cfg = simp_c();
    let ws = Workspace::new(4, 64);
    let mut models: Vec<Model> = (0..DOCS).map(|i| Model::new(i, 10)).collect();
    let docs: Vec<DocId> = models
        .iter()
        .map(|m| ws.open_with_semantics(&cfg, &m.text()).unwrap())
        .collect();
    // Every fourth document: initially homed together (doc_id % 4), though
    // the Open commands themselves may already have been stolen — ownership
    // is dynamic from the first submit.
    let hot: Vec<usize> = (0..DOCS).step_by(DOCS / HOT).collect();
    assert_eq!(hot.len(), HOT);

    let mut rng = StdRng::seed_from_u64(0x57EA_1D0C);
    let mut fresh = 0u64;
    let mut submitted = 0usize;
    let mut expected_seq: HashMap<DocId, u64> = HashMap::new();
    let poisoned_ix = hot[HOT / 2];
    let mut poisoned = false;
    for round in 0..ROUNDS {
        let mut applies: Vec<PendingApply> = Vec::new();
        let mut queries: Vec<(DocId, usize, String)> = Vec::new();
        // Flood the hot documents (wherever they live by now) while the
        // other three shards' own queues stay nearly empty — progress on
        // this workload *requires* stealing.
        for &i in &hot {
            let doc = docs[i];
            if poisoned && i == poisoned_ix {
                // The dead document keeps receiving traffic; whichever
                // shard serves it must still answer Poisoned.
                let p = ws
                    .apply_async(doc, vec![EditReq::insert(0, "int q; ")])
                    .unwrap();
                let r = p.wait();
                assert_eq!(
                    r.result,
                    Err(WorkspaceError::Poisoned(doc)),
                    "round {round}: poison must survive migration"
                );
                continue;
            }
            if round == ROUNDS / 2 && i == poisoned_ix {
                // Kill one hot document mid-flight with an out-of-bounds
                // edit; everything else must keep working.
                let p = ws
                    .apply_async(doc, vec![EditReq::replace(1 << 30, 1, "x")])
                    .unwrap();
                assert_eq!(p.wait().result, Err(WorkspaceError::Poisoned(doc)));
                poisoned = true;
                continue;
            }
            let n = rng.random_range(1..4usize);
            let edits: Vec<EditReq> = (0..n)
                .map(|_| models[i].random_edit(&mut rng, &mut fresh))
                .collect();
            submitted += edits.len();
            applies.push(ws.apply_async(doc, edits).unwrap());
            if round % 3 == 0 {
                let (off, name) = models[i].some_name_offset(&mut rng);
                queries.push((doc, off, name));
            }
        }
        // A trickle on the cold documents keeps all 64 live.
        for (i, doc) in docs.iter().enumerate() {
            if !hot.contains(&i) && rng.random_bool(0.05) {
                let edits = vec![models[i].random_edit(&mut rng, &mut fresh)];
                submitted += edits.len();
                applies.push(ws.apply_async(*doc, edits).unwrap());
            }
        }
        for p in applies {
            let report = p.wait();
            let outcome = report.result.expect("randomized valid edits must apply");
            let want = expected_seq.entry(report.doc).or_insert(0);
            *want += 1;
            assert_eq!(
                outcome.seq, *want,
                "{}: command processed out of order",
                report.doc
            );
            assert!(outcome.incorporated, "{}: edit refused", report.doc);
        }
        for (doc, off, name) in queries {
            // The round's applies were acknowledged above and every apply
            // reply is preceded by a snapshot publish, so the
            // snapshot-served query must observe the post-edit document
            // (read-your-writes for acknowledged writes).
            match ws
                .query(doc, SemQuery::ResolveAt(off))
                .expect("query reply must be delivered")
            {
                SemAnswer::Resolution(Some(info)) => assert_eq!(
                    info.name, name,
                    "round {round}: query observed a stale document"
                ),
                SemAnswer::Resolution(None) => {
                    panic!("round {round}: declared name {name} did not resolve")
                }
                other => panic!("unexpected answer {other:?}"),
            }
        }
    }

    // Ordering held and nothing was dropped — byte-for-byte agreement.
    for (i, doc) in docs.iter().enumerate() {
        if poisoned && i == poisoned_ix {
            assert_eq!(ws.text(*doc), None);
            continue;
        }
        assert_eq!(
            ws.text(*doc).unwrap(),
            models[i].text(),
            "doc {i} diverged from the serial model"
        );
    }
    assert!(
        docs.iter().any(|d| ws.epoch_of(*d).unwrap_or(0) > 0),
        "no document ever changed owner"
    );
    let m = ws.shutdown();
    assert!(m.steals > 0, "idle shards never stole from the flooded one");
    assert!(m.migrations > 0, "steals must rebind ownership");
    assert_eq!(m.docs_poisoned, 1);
    assert_eq!(
        m.edits_applied as usize, submitted,
        "every accepted edit must be fed exactly once"
    );
    assert_eq!(m.edits_refused, 0);
}

#[test]
fn self_cancelling_burst_elides_reparses_with_identical_text_and_tree() {
    const PAIRS: usize = 100;
    let cfg = simp_c();
    let ws = Workspace::new(1, 16);
    let text = "int alpha; int beta; alpha = beta + 1;";
    let doc = ws.open_with(&cfg, text).unwrap();
    let tree_before = ws.dump(doc).expect("dump after open");

    // 100 mutate/restore pairs at one site, all in one command: the whole
    // burst cancels out.
    let mut edits = Vec::with_capacity(PAIRS * 2);
    for _ in 0..PAIRS {
        edits.push(EditReq::replace(4, 5, "gamma"));
        edits.push(EditReq::replace(4, 5, "alpha"));
    }
    let before = ws.metrics();
    let reports = ws.apply(vec![(doc, edits)]);
    let outcome = reports[0].result.as_ref().expect("burst must apply");
    assert!(outcome.incorporated);
    assert_eq!(outcome.edits_applied, PAIRS * 2);

    let after = ws.metrics();
    let cycles = after.reparses - before.reparses;
    let fed = (after.edits_applied - before.edits_applied) as usize;
    assert_eq!(fed, PAIRS * 2);
    assert!(
        cycles as usize <= (PAIRS * 2) / 10,
        "coalescing must elide >=90% of reparses: {cycles} cycles for {fed} edits"
    );
    assert_eq!(
        (after.coalesced_edits - before.coalesced_edits) as usize,
        fed - cycles as usize,
        "every edit beyond one per cycle rode a shared cycle"
    );

    // The burst nets to zero: final text and tree are byte-identical.
    assert_eq!(ws.text(doc).unwrap(), text);
    assert_eq!(ws.dump(doc).unwrap(), tree_before);

    // The document is still fully serviceable afterwards.
    let r = ws.apply(vec![(doc, vec![EditReq::replace(4, 5, "delta")])]);
    assert!(r[0].result.as_ref().unwrap().incorporated);
    assert_eq!(
        ws.text(doc).unwrap(),
        "int delta; int beta; alpha = beta + 1;"
    );
    ws.shutdown();
}

#[test]
fn queued_commands_coalesce_across_command_boundaries() {
    // One worker: a long-running command on a stall document keeps the
    // worker busy while 30 self-cancelling commands pile up in a second
    // document's mailbox; the drain processes them as one service run.
    // Within-run cycle counts are deterministic, so the total is exact up
    // to how many drains the pair traffic splits into.
    const STALL_EDITS: usize = 2000;
    const PAIR_CMDS: usize = 30;
    for attempt in 0..3 {
        let cfg = simp_c();
        let ws = Workspace::new(1, 64);
        let stall_text = "int aaaa; int filler_one; int filler_two; int filler_three; \
                          int filler_four; int filler_five; int filler_six; int zzzz;";
        let stall = ws.open_with(&cfg, stall_text).unwrap();
        let pair_doc = ws.open_with(&cfg, "int alpha; int beta;").unwrap();
        let z_off = stall_text.find("zzzz").unwrap();
        // Alternating distant sites: every consecutive pair exceeds the
        // coalescing gap, so this single command costs one cycle per edit.
        let stall_edits: Vec<EditReq> = (0..STALL_EDITS)
            .map(|i| {
                if i % 2 == 0 {
                    EditReq::replace(4, 4, if i % 4 == 0 { "bbbb" } else { "aaaa" })
                } else {
                    EditReq::replace(z_off, 4, if i % 4 == 1 { "yyyy" } else { "zzzz" })
                }
            })
            .collect();
        let p_stall = ws.apply_async(stall, stall_edits).unwrap();
        let mut pending = Vec::new();
        for _ in 0..PAIR_CMDS {
            pending.push(
                ws.apply_async(
                    pair_doc,
                    vec![
                        EditReq::replace(4, 5, "gamma"),
                        EditReq::replace(4, 5, "alpha"),
                    ],
                )
                .unwrap(),
            );
        }
        assert!(p_stall.wait().result.is_ok());
        for p in pending {
            assert!(p.wait().result.is_ok());
        }
        assert_eq!(ws.text(pair_doc).unwrap(), "int alpha; int beta;");
        let m = ws.shutdown();
        // Stall: one cycle per edit. Pairs: one cycle per service run. If
        // most pair commands queued behind the stall, they drained
        // together into a handful of runs.
        let pair_cycles = m.reparses as i64 - STALL_EDITS as i64;
        assert!(pair_cycles >= 1, "accounting is off: {}", m.reparses);
        if pair_cycles as usize <= PAIR_CMDS / 3 {
            assert!(
                m.coalesced_edits >= (PAIR_CMDS as u64 * 2) - pair_cycles as u64,
                "coalesced {} with {pair_cycles} pair cycles",
                m.coalesced_edits
            );
            return; // cross-command coalescing observed
        }
        // The worker outran the submitter (tiny timeslice machines);
        // retry the whole scenario.
        eprintln!("attempt {attempt}: pair traffic split into {pair_cycles} cycles, retrying");
    }
    panic!("queued commands never coalesced across command boundaries in 3 attempts");
}

#[test]
fn poisoned_document_migrates_poisoned() {
    let cfg = simp_c();
    let ws = Workspace::new(2, 64);
    let victim = ws.open_with(&cfg, "int a;").unwrap(); // id 0 -> shard 0
    let helper1 = ws.open_with(&cfg, "int aaaa; int zzzz;").unwrap(); // id 1 -> shard 1
    let helper2 = ws.open_with(&cfg, "int aaaa; int zzzz;").unwrap(); // id 2 -> shard 0

    let r = ws.apply(vec![(victim, vec![EditReq::replace(1 << 30, 1, "x")])]);
    assert_eq!(r[0].result, Err(WorkspaceError::Poisoned(victim)));
    let epoch0 = ws.epoch_of(victim).unwrap();

    // Stall the victim's current owner with a long command on a shardmate
    // so the idle worker steals the victim; retry until a migration is
    // actually observed, then the Poisoned answer must have come from the
    // *new* owner.
    let mut migrated = false;
    for _ in 0..50 {
        let owner = ws.shard_of(victim);
        let stall = if ws.shard_of(helper1) == owner {
            helper1
        } else if ws.shard_of(helper2) == owner {
            helper2
        } else {
            // Both helpers drifted off the victim's shard; poke one so the
            // scheduler redistributes and retry.
            let _ = ws.apply(vec![(helper1, vec![EditReq::replace(4, 4, "aaaa")])]);
            continue;
        };
        let stall_edits: Vec<EditReq> = (0..400)
            .map(|i| {
                if i % 2 == 0 {
                    EditReq::replace(4, 4, "bbbb")
                } else {
                    EditReq::replace(4, 4, "aaaa")
                }
            })
            .collect();
        let p_stall = ws.apply_async(stall, stall_edits).unwrap();
        let p_victim = ws
            .apply_async(victim, vec![EditReq::insert(0, "int q; ")])
            .unwrap();
        assert_eq!(
            p_victim.wait().result,
            Err(WorkspaceError::Poisoned(victim)),
            "poison must hold no matter which shard answers"
        );
        assert!(p_stall.wait().result.is_ok());
        if ws.epoch_of(victim).unwrap() > epoch0 {
            migrated = true;
            break;
        }
    }
    assert!(migrated, "the poisoned document never changed owner");
    let m = ws.metrics();
    assert_eq!(m.docs_poisoned, 1);
    assert!(m.migrations > 0);
    // Closing the poisoned id clears the tombstone.
    assert!(!ws.close(victim));
    assert_eq!(ws.text(victim), None);
    ws.shutdown();
}
