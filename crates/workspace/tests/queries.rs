//! Semantic query integration tests: the `Cmd::Query` path answers from
//! the session-resident incremental [`wg_sem::SemState`] on the home
//! shard, stays consistent across edits, and records its service time in
//! the workspace metrics.

use wg_core::SemNameKind;
use wg_langs::simp_c;
use wg_workspace::{EditReq, SemAnswer, SemQuery, Workspace, WorkspaceError};

#[test]
fn resolve_uses_and_ambiguity_queries_answer_on_home_shard() {
    let cfg = simp_c();
    let ws = Workspace::new(2, 16);
    let text = "typedef int t; t (x); int v; v = v + 1;";
    let doc = ws.open_with_semantics(&cfg, text).unwrap();

    // Resolve the last use of `v`.
    let off = text.rfind('v').unwrap();
    match ws.query(doc, SemQuery::ResolveAt(off)).unwrap() {
        SemAnswer::Resolution(Some(info)) => {
            assert_eq!(info.name, "v");
            assert_eq!(info.kind, Some(SemNameKind::Variable));
            assert!(info.resolved);
        }
        other => panic!("expected a resolution, got {other:?}"),
    }

    // Def-use index.
    match ws.query(doc, SemQuery::UsesOf("v".to_string())).unwrap() {
        SemAnswer::Uses(sites) => assert_eq!(sites.len(), 2),
        other => panic!("expected use sites, got {other:?}"),
    }

    // The `t (x)` construct is ambiguous and (with `t` bound) resolved.
    let toff = text.find("t (x)").unwrap();
    match ws.query(doc, SemQuery::AmbiguityAt(toff)).unwrap() {
        SemAnswer::Ambiguity(ambiguous, resolved) => {
            assert!(ambiguous);
            assert!(resolved);
        }
        other => panic!("expected ambiguity status, got {other:?}"),
    }

    let m = ws.shutdown();
    assert_eq!(m.queries, 3);
}

#[test]
fn queries_track_edits_through_the_incremental_pass() {
    let cfg = simp_c();
    let ws = Workspace::new(1, 16);
    let text = "typedef int t; int t2; t (x);";
    let doc = ws.open_with_semantics(&cfg, text).unwrap();

    let toff = text.find("t (x)").unwrap();
    match ws.query(doc, SemQuery::AmbiguityAt(toff)).unwrap() {
        SemAnswer::Ambiguity(true, resolved) => assert!(resolved),
        other => panic!("expected resolved ambiguity, got {other:?}"),
    }

    // Removing the typedef upstream flips the retained alternative; the
    // query must observe the post-edit facts without any re-walk.
    let reports = ws.apply(vec![(
        doc,
        vec![EditReq::replace(0, "typedef int t;".len(), "int t;")],
    )]);
    let outcome = reports[0].result.as_ref().unwrap();
    assert!(outcome.incorporated);
    assert!(
        outcome.last_report.sem_flips >= 1,
        "typedef removal must flip in place: {:?}",
        outcome.last_report
    );

    let new_text = ws.text(doc).unwrap();
    let toff = new_text.find("t (x)").unwrap();
    match ws.query(doc, SemQuery::ResolveAt(toff)).unwrap() {
        SemAnswer::Resolution(Some(info)) => {
            assert_eq!(info.name, "t");
            assert_eq!(info.kind, Some(SemNameKind::Variable));
            assert!(info.ambiguous);
        }
        other => panic!("expected the flipped head, got {other:?}"),
    }
    ws.shutdown();
}

#[test]
fn query_without_semantics_is_refused() {
    let cfg = simp_c();
    let ws = Workspace::new(1, 16);
    let doc = ws.open_with(&cfg, "int a;").unwrap();
    match ws.query(doc, SemQuery::ResolveAt(4)) {
        Err(WorkspaceError::NoSemantics(d)) => assert_eq!(d, doc),
        other => panic!("expected NoSemantics, got {other:?}"),
    }
    ws.shutdown();
}

#[test]
fn query_latency_lands_in_workspace_metrics() {
    let cfg = simp_c();
    let ws = Workspace::new(1, 16);
    let doc = ws.open_with_semantics(&cfg, "int a; a = a;").unwrap();
    for _ in 0..8 {
        ws.query(doc, SemQuery::UsesOf("a".to_string())).unwrap();
    }
    let m = ws.metrics();
    assert_eq!(m.queries, 8);
    assert!(
        m.query_p50 > std::time::Duration::ZERO,
        "query service time must be recorded"
    );
    assert!(m.query_p99 >= m.query_p50);
    ws.shutdown();
}
