//! Hand-rolled channel primitives — `Mutex` + `Condvar` only, no external
//! dependencies and no `unsafe`.
//!
//! Two shapes cover everything the workspace needs:
//!
//! * [`BoundedQueue`] — a multi-producer single-consumer work queue with a
//!   hard capacity. Producers *block* when the queue is full (backpressure:
//!   a flood of edits slows the callers down instead of growing memory
//!   without bound), and a closed queue refuses new work while the consumer
//!   drains what was already accepted — the graceful-shutdown contract.
//! * [`oneshot`] — a single-value reply slot. The worker sends exactly one
//!   result; the caller blocks until it arrives. If the sender is dropped
//!   without sending (a worker died), the receiver wakes with `None`
//!   instead of deadlocking.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking bounded MPSC queue built on `Mutex`/`Condvar`.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue accepting at most `cap` in-flight items (`cap >= 1`).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `item`, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed before space opened.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.cap {
                break;
            }
            st = self.not_full.wait(st).expect("queue lock");
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed **and** fully drained —
    /// work accepted before the close is always delivered.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock");
        }
    }

    /// Closes the queue: pending `push` calls fail, queued items remain
    /// poppable, and consumers see `None` after the drain.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued (a racy gauge, for metrics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy, for metrics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct SlotState<T> {
    value: Option<T>,
    done: bool,
}

struct SlotInner<T> {
    slot: Mutex<SlotState<T>>,
    cv: Condvar,
}

/// The sending half of a [`oneshot`] reply slot. Dropping it unsent wakes
/// the receiver with `None`.
pub struct OneShotSender<T>(Arc<SlotInner<T>>);

/// The receiving half of a [`oneshot`] reply slot.
pub struct OneShotReceiver<T>(Arc<SlotInner<T>>);

/// Creates a connected single-value reply slot.
pub fn oneshot<T>() -> (OneShotSender<T>, OneShotReceiver<T>) {
    let inner = Arc::new(SlotInner {
        slot: Mutex::new(SlotState {
            value: None,
            done: false,
        }),
        cv: Condvar::new(),
    });
    (OneShotSender(Arc::clone(&inner)), OneShotReceiver(inner))
}

impl<T> OneShotSender<T> {
    /// Delivers the value and wakes the receiver.
    pub fn send(self, value: T) {
        let mut st = self.0.slot.lock().expect("oneshot lock");
        st.value = Some(value);
        st.done = true;
        drop(st);
        self.0.cv.notify_all();
        // Drop of `self` re-checks `done` and is a no-op.
    }
}

impl<T> Drop for OneShotSender<T> {
    fn drop(&mut self) {
        let mut st = self.0.slot.lock().expect("oneshot lock");
        if !st.done {
            st.done = true;
            drop(st);
            self.0.cv.notify_all();
        }
    }
}

impl<T> OneShotReceiver<T> {
    /// Blocks until the value arrives; `None` if the sender vanished.
    pub fn recv(self) -> Option<T> {
        let mut st = self.0.slot.lock().expect("oneshot lock");
        while !st.done {
            st = self.0.cv.wait(st).expect("oneshot lock");
        }
        st.value.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn queue_roundtrip_fifo() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_at_capacity_until_pop() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let pushed = Arc::new(AtomicUsize::new(0));
        let handle = {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            std::thread::spawn(move || {
                q.push(2).unwrap(); // must block: capacity 2 reached
                pushed.store(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(pushed.load(Ordering::SeqCst), 0, "push ran past capacity");
        assert_eq!(q.pop(), Some(0));
        handle.join().unwrap();
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn closed_queue_refuses_new_work_but_drains_old() {
        let q = BoundedQueue::new(4);
        q.push("kept").unwrap();
        q.close();
        assert_eq!(q.push("refused"), Err("refused"));
        assert_eq!(q.pop(), Some("kept"), "accepted work survives the close");
        assert_eq!(q.pop(), None, "then the consumer sees the end");
    }

    #[test]
    fn close_unblocks_a_full_queue_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(
            handle.join().unwrap(),
            Err(1),
            "blocked push fails on close"
        );
    }

    #[test]
    fn oneshot_delivers() {
        let (tx, rx) = oneshot();
        std::thread::spawn(move || tx.send(42));
        assert_eq!(rx.recv(), Some(42));
    }

    #[test]
    fn oneshot_dropped_sender_wakes_receiver() {
        let (tx, rx) = oneshot::<u32>();
        std::thread::spawn(move || drop(tx));
        assert_eq!(rx.recv(), None, "no deadlock on a dead worker");
    }
}
