//! A hand-rolled sharded thread pool over [`BoundedQueue`]s.
//!
//! Unlike a work-stealing pool, work here is *affine*: every item is
//! addressed to a shard, each shard is one `std::thread` draining one FIFO
//! queue, and nothing ever migrates. That turns per-document ordering into
//! a structural property — commands for one document always land on its
//! home shard and are processed in arrival order — while documents on
//! different shards proceed in parallel with zero synchronization between
//! them (the paper's artifacts are immutable and `Arc`-shared; all mutable
//! state is shard-local).

use crate::sync::BoundedQueue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A fixed set of shard worker threads, each owning a bounded work queue.
pub struct ShardPool<T: Send + 'static> {
    shards: Vec<Arc<BoundedQueue<T>>>,
    busy_ns: Vec<Arc<AtomicU64>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> ShardPool<T> {
    /// Spawns `threads` workers with `queue_cap` items of backpressure
    /// each. `make_handler(shard_index)` builds the per-shard handler; the
    /// handler owns all shard-local state and is invoked once per item.
    pub fn new<F, H>(threads: usize, queue_cap: usize, make_handler: F) -> ShardPool<T>
    where
        F: Fn(usize) -> H,
        H: FnMut(T) + Send + 'static,
    {
        let threads = threads.max(1);
        let mut shards = Vec::with_capacity(threads);
        let mut busy_ns = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let queue = Arc::new(BoundedQueue::new(queue_cap));
            let busy = Arc::new(AtomicU64::new(0));
            let mut handler = make_handler(i);
            let worker_queue = Arc::clone(&queue);
            let worker_busy = Arc::clone(&busy);
            let handle = std::thread::Builder::new()
                .name(format!("wg-shard-{i}"))
                .spawn(move || {
                    // Drain until the queue is closed *and* empty: work
                    // accepted before shutdown is always completed.
                    while let Some(item) = worker_queue.pop() {
                        let t0 = Instant::now();
                        handler(item);
                        worker_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                })
                .expect("spawn shard worker");
            shards.push(queue);
            busy_ns.push(busy);
            workers.push(handle);
        }
        ShardPool {
            shards,
            busy_ns,
            workers,
        }
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Enqueues `item` on `shard`, blocking while that shard's queue is
    /// full (backpressure).
    ///
    /// # Errors
    ///
    /// Returns the item back if the pool is shutting down.
    pub fn submit(&self, shard: usize, item: T) -> Result<(), T> {
        self.shards[shard % self.shards.len()].push(item)
    }

    /// Total items currently queued across all shards (racy gauge).
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Per-shard busy time: wall-clock spent inside handlers.
    pub fn busy_time(&self) -> Vec<Duration> {
        self.busy_ns
            .iter()
            .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Closes every queue and joins every worker. Queued work is drained
    /// first; new submissions fail immediately.
    pub fn shutdown(&mut self) {
        for q in &self.shards {
            q.close();
        }
        for handle in self.workers.drain(..) {
            // A worker that panicked already poisoned nothing shared (all
            // its state was shard-local); surface the panic to the caller.
            if let Err(e) = handle.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl<T: Send + 'static> Drop for ShardPool<T> {
    fn drop(&mut self) {
        if !self.workers.is_empty() && !std::thread::panicking() {
            self.shutdown();
        } else {
            // Unwinding already: close queues so workers exit, but do not
            // join (avoid a double panic aborting the process).
            for q in &self.shards {
                q.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn work_lands_on_its_shard_in_order() {
        let log: Arc<Mutex<Vec<(usize, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut pool = {
            let log = Arc::clone(&log);
            ShardPool::new(3, 16, move |shard| {
                let log = Arc::clone(&log);
                move |item: u32| log.lock().unwrap().push((shard, item))
            })
        };
        for i in 0..30u32 {
            pool.submit(i as usize % 3, i).unwrap();
        }
        pool.shutdown();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 30, "no lost work");
        for shard in 0..3 {
            let seen: Vec<u32> = log
                .iter()
                .filter(|(s, _)| *s == shard)
                .map(|&(_, i)| i)
                .collect();
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(seen, sorted, "shard {shard} processed out of order");
            assert!(seen.iter().all(|i| *i as usize % 3 == shard));
        }
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = {
            let done = Arc::clone(&done);
            ShardPool::new(1, 64, move |_| {
                let done = Arc::clone(&done);
                move |_: ()| {
                    std::thread::sleep(Duration::from_micros(200));
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        for _ in 0..50 {
            pool.submit(0, ()).unwrap();
        }
        pool.shutdown(); // queue almost certainly non-empty here
        assert_eq!(done.load(Ordering::SeqCst), 50, "accepted work must finish");
        assert!(pool.submit(0, ()).is_err(), "closed pool refuses new work");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut pool = ShardPool::new(2, 8, |_| {
            |_: ()| std::thread::sleep(Duration::from_millis(2))
        });
        for _ in 0..4 {
            pool.submit(0, ()).unwrap();
        }
        pool.shutdown();
        let busy = pool.busy_time();
        assert!(
            busy[0] >= Duration::from_millis(6),
            "shard 0 worked: {busy:?}"
        );
        assert_eq!(busy[1], Duration::ZERO, "shard 1 idled");
    }
}
