//! A hand-rolled work-stealing shard pool — `Mutex`/`Condvar` only.
//!
//! Each shard is one `std::thread` with its own run-queue (a deque). A
//! worker pops its own queue front-first; when that runs dry it *steals*
//! from the back of another shard's queue instead of going idle. The pool
//! schedules opaque items (the workspace schedules whole documents), so
//! per-document FIFO is no longer a pool property — it is a structural
//! property of the document's own mailbox, which travels with the item
//! wherever it is stolen to. The handler is told whether the item arrived
//! by steal so the layer above can rebind ownership (migration).
//!
//! Queues here are unbounded: backpressure lives in the per-document
//! mailboxes above (a document occupies at most one run-queue slot at a
//! time), so run-queue length is bounded by the number of live documents.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct PoolShared<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Total items across all deques. Fast emptiness check for sleepers;
    /// incremented *before* the wake notification so a racing sleeper
    /// re-checking under the sleep lock cannot miss it.
    pending: AtomicUsize,
    /// Workers currently inside a handler. Shutdown completes only when
    /// `closed && pending == 0 && in_flight == 0`, so a handler that
    /// re-queues work (via [`Requeue`]) keeps the pool alive until that
    /// work drains too.
    in_flight: AtomicUsize,
    closed: AtomicBool,
    steals: AtomicU64,
    busy_ns: Vec<AtomicU64>,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl<T> PoolShared<T> {
    fn push(&self, shard: usize, item: T) {
        let n = self.deques.len();
        // Increment `pending` *before* the item becomes poppable: a worker
        // scanning concurrently may pop it the instant the deque lock is
        // released, and its matching decrement must never find the counter
        // still at zero. Transient overcount is harmless — `pending` is an
        // upper bound on queued items, and the sleep/shutdown protocol only
        // relies on `pending == 0` implying empty deques.
        let pending = self.pending.fetch_add(1, Ordering::Release) + 1;
        self.deques[shard % n]
            .lock()
            .expect("deque lock")
            .push_back(item);
        if *crate::workspace::TRACE {
            eprintln!("pool.push shard={} pending={pending}", shard % n);
        }
        let _guard = self.sleep.lock().expect("sleep lock");
        self.wake.notify_one();
    }
}

/// A re-queue handle passed to each shard handler: lets a handler put an
/// item back on a run-queue even while the pool is shutting down, so work
/// accepted before the close always finishes.
pub struct Requeue<T>(Arc<PoolShared<T>>);

impl<T> Clone for Requeue<T> {
    fn clone(&self) -> Requeue<T> {
        Requeue(Arc::clone(&self.0))
    }
}

impl<T> Requeue<T> {
    /// Pushes `item` onto `shard`'s run-queue, ignoring the closed flag.
    pub fn push(&self, shard: usize, item: T) {
        self.0.push(shard, item);
    }
}

/// A fixed set of shard worker threads over per-shard stealing deques.
pub struct ShardPool<T: Send + 'static> {
    inner: Arc<PoolShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> ShardPool<T> {
    /// Spawns `threads` workers. `make_handler(shard_index, requeue)`
    /// builds the per-shard handler; the handler owns all shard-local
    /// state and is invoked once per item with a flag saying whether the
    /// item was stolen from another shard's queue.
    pub fn new<F, H>(threads: usize, make_handler: F) -> ShardPool<T>
    where
        F: Fn(usize, Requeue<T>) -> H,
        H: FnMut(T, bool) + Send + 'static,
    {
        let threads = threads.max(1);
        let inner = Arc::new(PoolShared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let handler = make_handler(i, Requeue(Arc::clone(&inner)));
            let shared = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("wg-shard-{i}"))
                .spawn(move || worker_loop(i, shared, handler))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        ShardPool { inner, workers }
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.inner.deques.len()
    }

    /// Enqueues `item` on `shard`'s run-queue and wakes a sleeper.
    ///
    /// # Errors
    ///
    /// Returns the item back if the pool is shutting down.
    pub fn submit(&self, shard: usize, item: T) -> Result<(), T> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(item);
        }
        self.inner.push(shard, item);
        Ok(())
    }

    /// A [`Requeue`] handle for pushing from outside a handler (tests).
    pub fn requeue_handle(&self) -> Requeue<T> {
        Requeue(Arc::clone(&self.inner))
    }

    /// Items currently sitting on run-queues across all shards (racy
    /// gauge; the workspace counts mailbox commands separately).
    pub fn queue_depth(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// `true` when no item is queued or executing. Because each worker
    /// decrements `in_flight` *after* charging its [`Self::busy_time`],
    /// an idle pool's busy gauges are fully flushed — callers that
    /// snapshot busy time for windowed measurements should wait for
    /// idleness first (a worker descheduled between sending a reply and
    /// charging its time otherwise makes the snapshot undercount).
    pub fn idle(&self) -> bool {
        self.inner.pending.load(Ordering::Acquire) == 0
            && self.inner.in_flight.load(Ordering::Acquire) == 0
    }

    /// Items popped from a *foreign* shard's queue since startup.
    pub fn steals(&self) -> u64 {
        self.inner.steals.load(Ordering::Relaxed)
    }

    /// Per-shard busy time: wall-clock spent inside handlers.
    pub fn busy_time(&self) -> Vec<Duration> {
        self.inner
            .busy_ns
            .iter()
            .map(|b| Duration::from_nanos(b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Closes the pool and joins every worker. Queued work — including
    /// anything handlers re-queue while draining — is completed first;
    /// new `submit` calls fail immediately.
    pub fn shutdown(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
        {
            let _guard = self.inner.sleep.lock().expect("sleep lock");
            self.inner.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            // A worker that panicked poisoned nothing shared beyond its
            // own deque lock; surface the panic to the caller.
            if let Err(e) = handle.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl<T: Send + 'static> Drop for ShardPool<T> {
    fn drop(&mut self) {
        if !self.workers.is_empty() && !std::thread::panicking() {
            self.shutdown();
        } else {
            // Unwinding already: signal workers to exit after the drain,
            // but do not join (avoid a double panic aborting the process).
            self.inner.closed.store(true, Ordering::Release);
            let _guard = self.inner.sleep.lock().expect("sleep lock");
            self.inner.wake.notify_all();
        }
    }
}

fn worker_loop<T, H: FnMut(T, bool)>(me: usize, shared: Arc<PoolShared<T>>, mut handler: H) {
    let n = shared.deques.len();
    loop {
        // Own queue first (front: oldest work), then steal round-robin
        // from the *back* of foreign queues — the classic deque split
        // minimizing contention with the victim's own front pops. Each
        // guard is bound to a `let` statement so it drops *before* the
        // next deque is tried: an `if let` scrutinee would keep the own
        // lock alive through the whole steal scan, and two workers
        // scanning toward each other would deadlock ABBA-style.
        let mut found: Option<(T, bool)> = None;
        let own = shared.deques[me].lock().expect("deque lock").pop_front();
        match own {
            Some(item) => found = Some((item, false)),
            None => {
                for off in 1..n {
                    let victim = (me + off) % n;
                    let theirs = shared.deques[victim].lock().expect("deque lock").pop_back();
                    if let Some(item) = theirs {
                        shared.steals.fetch_add(1, Ordering::Relaxed);
                        found = Some((item, true));
                        break;
                    }
                }
            }
        }
        match found {
            Some((item, stolen)) => {
                let left = shared.pending.fetch_sub(1, Ordering::Release) - 1;
                if *crate::workspace::TRACE {
                    eprintln!("pool.pop me={me} stolen={stolen} pending={left}");
                }
                shared.in_flight.fetch_add(1, Ordering::Release);
                let t0 = Instant::now();
                handler(item, stolen);
                shared.busy_ns[me].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                shared.in_flight.fetch_sub(1, Ordering::Release);
                if shared.closed.load(Ordering::Acquire) {
                    // We may have been the last in-flight worker a
                    // sleeper is waiting out; wake everyone to re-check.
                    let _guard = shared.sleep.lock().expect("sleep lock");
                    shared.wake.notify_all();
                }
            }
            None => {
                // Sleep protocol: re-check `pending` *under the sleep
                // lock*. Every push increments `pending` before taking
                // the sleep lock to notify, so either we see the item
                // here or the notification reaches us in `wait`.
                let mut guard = shared.sleep.lock().expect("sleep lock");
                loop {
                    if shared.pending.load(Ordering::Acquire) > 0 {
                        break;
                    }
                    if shared.closed.load(Ordering::Acquire)
                        && shared.in_flight.load(Ordering::Acquire) == 0
                    {
                        return;
                    }
                    if *crate::workspace::TRACE {
                        eprintln!("pool.sleep me={me}");
                    }
                    guard = shared.wake.wait(guard).expect("sleep lock");
                    if *crate::workspace::TRACE {
                        eprintln!("pool.wake me={me}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn all_work_processed_exactly_once() {
        let log: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let mut pool = {
            let log = Arc::clone(&log);
            ShardPool::new(3, move |_, _rq| {
                let log = Arc::clone(&log);
                move |item: u32, _stolen| log.lock().unwrap().push(item)
            })
        };
        for i in 0..300u32 {
            pool.submit(i as usize % 3, i).unwrap();
        }
        pool.shutdown();
        let mut log = log.lock().unwrap();
        log.sort_unstable();
        assert_eq!(*log, (0..300).collect::<Vec<_>>(), "lost or doubled work");
    }

    #[test]
    fn idle_shards_steal_from_a_flooded_one() {
        let by_worker: Arc<Mutex<Vec<(usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let mut pool = {
            let by_worker = Arc::clone(&by_worker);
            ShardPool::new(4, move |worker, _rq| {
                let by_worker = Arc::clone(&by_worker);
                move |_: (), stolen| {
                    // Slow items so the flood outlives the victim's own
                    // draining and thieves get a window.
                    std::thread::sleep(Duration::from_millis(2));
                    by_worker.lock().unwrap().push((worker, stolen));
                }
            })
        };
        for _ in 0..64 {
            pool.submit(0, ()).unwrap(); // everything lands on shard 0
        }
        pool.shutdown();
        let log = by_worker.lock().unwrap();
        assert_eq!(log.len(), 64);
        assert!(pool.steals() > 0, "no steals despite a flooded shard");
        let foreign = log.iter().filter(|(w, _)| *w != 0).count();
        assert!(foreign > 0, "only the home shard ever ran work");
        assert!(
            log.iter().all(|&(w, stolen)| stolen == (w != 0)),
            "stolen flag disagrees with which worker ran the item"
        );
    }

    #[test]
    fn shutdown_drains_queued_and_requeued_work() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = {
            let done = Arc::clone(&done);
            ShardPool::new(1, move |_, rq: Requeue<u32>| {
                let done = Arc::clone(&done);
                move |gen: u32, _| {
                    std::thread::sleep(Duration::from_micros(200));
                    done.fetch_add(1, Ordering::SeqCst);
                    if gen > 0 {
                        // Re-queues must survive the close: this runs
                        // while shutdown is already in progress.
                        rq.push(0, gen - 1);
                    }
                }
            })
        };
        for _ in 0..20 {
            pool.submit(0, 1).unwrap(); // each item re-queues one child
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 40, "accepted work must finish");
        assert!(pool.submit(0, 0).is_err(), "closed pool refuses new work");
    }

    #[test]
    fn busy_time_accumulates_on_the_worker_that_ran_the_item() {
        let mut pool = ShardPool::new(2, |_, _rq| {
            |_: (), _| std::thread::sleep(Duration::from_millis(2))
        });
        for _ in 0..8 {
            pool.submit(0, ()).unwrap();
        }
        pool.shutdown();
        let busy = pool.busy_time();
        let total: Duration = busy.iter().sum();
        assert!(
            total >= Duration::from_millis(12),
            "workers idled: {busy:?}"
        );
    }
}
