//! Workspace-level observability: a lock-free latency histogram and the
//! [`WorkspaceMetrics`] snapshot.
//!
//! The empirical-parser literature evaluates incremental parsers on two
//! axes — sustained throughput and *bounded per-edit latency* — so the
//! workspace records every reparse **cycle**'s service time (one cycle
//! incorporates every pending edit coalesced into its damage region) in a
//! log-bucketed histogram with 16 linear sub-buckets per octave (≤ ~6%
//! relative error), cheap enough to leave on in production: one relaxed
//! atomic increment per cycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (resolution trade-off).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS; // 16
/// Octaves above the linear range; 2^(4+60) ns ≈ 36 years, plenty.
const OCTAVES: usize = 60;
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// A concurrent log-linear histogram of durations.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUBS as u64 {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros(); // >= SUB_BITS
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((ns >> octave) - SUBS as u64) as usize; // 0..16
        (SUBS + octave.min(OCTAVES - 1) * SUBS + sub).min(BUCKETS - 1)
    }

    /// Bucket midpoint for reconstruction, inverse of [`Self::index`].
    fn value(ix: usize) -> u64 {
        if ix < SUBS {
            return ix as u64;
        }
        let octave = (ix - SUBS) / SUBS;
        let sub = ((ix - SUBS) % SUBS) as u64;
        // Midpoint of [ (16+sub) << octave, (16+sub+1) << octave ).
        ((2 * (SUBS as u64 + sub) + 1) << octave) / 2
    }

    /// Records one observation.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// The `p`-quantile (`0.0..=1.0`) of recorded durations, to bucket
    /// resolution. Zero when empty.
    pub fn percentile(&self, p: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (ix, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_nanos(Self::value(ix));
            }
        }
        Duration::from_nanos(Self::value(BUCKETS - 1))
    }
}

/// A point-in-time snapshot of workspace health (gauges are racy reads;
/// counters are exact).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkspaceMetrics {
    /// Documents currently open (racy gauge: counts sessions alive on
    /// their worker shards, sampled without stopping them).
    pub docs_open: usize,
    /// Edits fed into sessions since the workspace started. With
    /// coalescing this is no longer the reparse count — see
    /// [`Self::reparses`] and [`Self::coalesced_edits`].
    pub edits_applied: u64,
    /// Reparse cycles run across all documents. Under coalescing many
    /// edits share one cycle, so `reparses <= edits_applied`.
    pub reparses: u64,
    /// Edits still refused by their tree when their service run finished
    /// (Section 4.3 recovery); retried by later cycles, so one edit can
    /// be counted refused more than once.
    pub edits_refused: u64,
    /// Edits that rode a reparse cycle started by an earlier edit — the
    /// work the coalescer elided: `edits_applied - reparses` in the
    /// steady state. A burst of self-cancelling edits shows up here.
    pub coalesced_edits: u64,
    /// Documents popped from a *foreign* shard's run-queue by an idle
    /// worker since startup (the scheduler-level event).
    pub steals: u64,
    /// Document ownership rebinds caused by steals (the document-level
    /// event: the mailbox's owner shard changed and its migration epoch
    /// was bumped).
    pub migrations: u64,
    /// Documents poisoned by a panicking operation and dropped.
    pub docs_poisoned: u64,
    /// Wall-clock since the workspace started.
    pub elapsed: Duration,
    /// `edits_applied / elapsed` — the sustained-throughput axis.
    pub edits_per_sec: f64,
    /// Commands queued in document mailboxes right now, summed over
    /// shards (racy gauge; documents already checked out by a worker
    /// contribute nothing). Equals `queue_depth_per_shard.iter().sum()`.
    pub queue_depth: usize,
    /// Mailbox commands charged to each document's current owner shard
    /// (racy gauge) — the live view of scheduling imbalance that
    /// stealing exists to flatten.
    pub queue_depth_per_shard: Vec<usize>,
    /// `busiest_shard_busy / elapsed`: 1.0 means one shard was busy the
    /// entire wall-clock (perfectly serial); with even load over S
    /// shards it approaches `busy_total / (S * elapsed)`. Note `elapsed`
    /// spans the workspace lifetime — benches computing a measured-window
    /// imbalance should difference `shard_busy` snapshots instead.
    pub imbalance: f64,
    /// Per-shard wall-clock spent executing commands.
    pub shard_busy: Vec<Duration>,
    /// Median per-**cycle** service latency (pending-edit batch + one
    /// reparse on the owning shard).
    pub p50: Duration,
    /// 95th-percentile per-cycle service latency.
    pub p95: Duration,
    /// 99th-percentile per-cycle service latency.
    pub p99: Duration,
    /// Semantic queries answered since the workspace started (snapshot
    /// reads and mailbox-path queries combined).
    pub queries: u64,
    /// Median semantic-query service latency (evaluation only, queue wait
    /// excluded on the mailbox path; snapshot reads have no queue).
    pub query_p50: Duration,
    /// 95th-percentile semantic-query service latency.
    pub query_p95: Duration,
    /// 99th-percentile semantic-query service latency.
    pub query_p99: Duration,
    /// Queries answered on the caller's thread from a published document
    /// snapshot — the lock-free read path that never enters a mailbox.
    pub snapshot_reads: u64,
    /// Maximum staleness observed at any snapshot read, in apply
    /// commands: accepted-but-unpublished applies at the moment of the
    /// read (0 = every read saw the newest accepted write).
    pub snapshot_lag: u64,
    /// Dag versions currently pinned by live snapshots, summed over open
    /// documents (racy gauge, sampled per document at its last publish).
    /// Each pinned version holds that document's collector back from
    /// recycling the node slots the version can still see.
    pub pinned_versions: usize,
    /// Grammar updates installed through this workspace's registry
    /// ([`crate::Workspace::update_grammar`] calls that succeeded).
    pub grammar_updates: u64,
    /// Session-level table adoptions: reparse cycles (broadcast-triggered
    /// or organic) that picked up a new table epoch.
    pub grammar_swaps: u64,
    /// Highest table epoch installed by this workspace's grammar updates
    /// (0 until the first update).
    pub table_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_value_roundtrip_within_resolution() {
        for ns in [
            0u64,
            1,
            7,
            15,
            16,
            17,
            100,
            999,
            12_345,
            1 << 30,
            u64::MAX / 2,
        ] {
            let v = LatencyHistogram::value(LatencyHistogram::index(ns));
            let err = (v as f64 - ns as f64).abs() / (ns.max(1) as f64);
            assert!(err <= 0.07, "ns={ns} reconstructed as {v} (err {err:.3})");
        }
    }

    #[test]
    fn indexes_are_monotone() {
        let mut last = 0;
        for ns in (0..1_000_000u64).step_by(997) {
            let ix = LatencyHistogram::index(ns);
            assert!(ix >= last, "index must not decrease (ns={ns})");
            last = ix;
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast ops at ~10µs, 10 slow ops at ~1ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(0.50).as_nanos() as f64;
        assert!((p50 - 10_000.0).abs() / 10_000.0 < 0.1, "p50 {p50}");
        let p99 = h.percentile(0.99).as_nanos() as f64;
        assert!((p99 - 1_000_000.0).abs() / 1_000_000.0 < 0.1, "p99 {p99}");
        assert!(h.mean() > Duration::from_micros(10));
        assert!(h.mean() < Duration::from_millis(1));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }
}
