//! **`wg-workspace`** — the concurrent multi-document service layer over
//! the Wagner–Graham incremental analysis pipeline.
//!
//! Three previous iterations made a *single* session fast (shared
//! artifacts, rope text, allocation-free IGLR); this crate scales the
//! system *out*: N independent [`wg_core::Session`]s scheduled as
//! stealable documents over a hand-rolled `std::thread` pool, one
//! thread-safe [`wg_core::LanguageRegistry`] sharing every immutable
//! artifact (grammar, LALR table, compiled lexer) across shards, and a
//! batch edit API with per-document ordering (structural: each document
//! owns a FIFO mailbox that migrates with it), cross-document
//! parallelism, document-granularity work stealing, edit coalescing
//! (consecutive pending edits share one covering reparse cycle), bounded
//! mailboxes for backpressure, graceful drain-on-shutdown, and
//! per-document panic isolation that survives migration. No dependencies
//! beyond `std` and the repo's own crates; no `unsafe`.
//!
//! # Example
//!
//! ```
//! use wg_grammar::{GrammarBuilder, SeqKind, Symbol};
//! use wg_lexer::LexerDef;
//! use wg_workspace::{EditReq, Workspace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GrammarBuilder::new("tiny");
//! let id = b.terminal("id");
//! let semi = b.terminal(";");
//! let stmt = b.nonterminal("stmt");
//! let prog = b.nonterminal("prog");
//! b.prod(stmt, vec![Symbol::T(id), Symbol::T(semi)]);
//! b.sequence(prog, Symbol::N(stmt), SeqKind::Plus, None);
//! b.start(prog);
//! let grammar = b.build()?;
//! let mut lx = LexerDef::new();
//! lx.rule("id", "[a-z]+")?;
//! lx.literal(";", ";");
//! lx.skip("ws", "[ \\n\\t]+")?;
//!
//! let ws = Workspace::new(4, 64);
//! let doc = ws.open(grammar, lx, "alpha; beta;")?;
//! let reports = ws.apply(vec![(doc, vec![EditReq::replace(0, 5, "gamma")])]);
//! assert!(reports[0].result.as_ref().unwrap().incorporated);
//! assert_eq!(ws.text(doc).unwrap(), "gamma; beta;");
//! let metrics = ws.shutdown();
//! assert_eq!(metrics.edits_applied, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod pool;
mod sync;
mod workspace;

pub use metrics::{LatencyHistogram, WorkspaceMetrics};
pub use pool::{Requeue, ShardPool};
pub use sync::{oneshot, BoundedQueue, OneShotReceiver, OneShotSender};
pub use workspace::{
    ApplyOutcome, DocId, DocReport, DocResult, EditReq, GrammarSwapReport, PendingApply,
    PendingQuery, SemAnswer, SemQuery, Workspace, WorkspaceError,
};
