//! The concurrent multi-document service: N [`Session`]s sharded across a
//! [`ShardPool`].
//!
//! ## Sharding model
//!
//! A document's home shard is `doc_id % threads`, fixed at open time.
//! Every command for a document is executed on its home shard in arrival
//! order, so *per-document* edit ordering is structural; documents on
//! different shards reparse in parallel. The immutable language artifacts
//! (grammar, LALR table, compiled lexer) are shared across all shards via
//! the thread-safe [`LanguageRegistry`]; everything mutable — the rope,
//! the dag arena, the token tape, the pooled parser scratch — lives inside
//! the shard-resident [`Session`] and is touched by exactly one thread.
//!
//! ## Failure isolation
//!
//! A panicking operation (a bounds-violating edit, a parser invariant
//! failure) is caught on the shard, poisons *only its own document* — the
//! session is dropped, later commands for it answer
//! [`WorkspaceError::Poisoned`] — and the shard keeps serving every other
//! document. Shutdown closes the queues (new work is refused), drains
//! accepted work, and joins the workers.

use crate::metrics::{LatencyHistogram, WorkspaceMetrics};
use crate::pool::ShardPool;
use crate::sync::{oneshot, OneShotReceiver, OneShotSender};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wg_core::{LanguageRegistry, ReparseReport, SemInfo, Session, SessionConfig, SessionError};
use wg_dag::NodeId;
use wg_grammar::Grammar;
use wg_lexer::LexerDef;
use wg_sem::{SemState, Strictness};

/// Identifies one document within a [`Workspace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// One textual edit addressed to a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditReq {
    /// Byte offset of the replaced range.
    pub start: usize,
    /// Bytes removed.
    pub removed: usize,
    /// Replacement text.
    pub insert: String,
}

impl EditReq {
    /// Replaces `removed` bytes at `start` with `insert`.
    pub fn replace(start: usize, removed: usize, insert: &str) -> EditReq {
        EditReq {
            start,
            removed,
            insert: insert.to_string(),
        }
    }

    /// Inserts `insert` at `start`.
    pub fn insert(start: usize, insert: &str) -> EditReq {
        EditReq::replace(start, 0, insert)
    }

    /// Deletes `removed` bytes at `start`.
    pub fn delete(start: usize, removed: usize) -> EditReq {
        EditReq::replace(start, removed, "")
    }
}

/// Why a workspace command failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkspaceError {
    /// No open document has this id (never opened, or closed).
    UnknownDoc(DocId),
    /// A previous operation on this document panicked; its session was
    /// dropped and the id is permanently dead.
    Poisoned(DocId),
    /// The workspace is shutting down and refused the command.
    ShuttingDown,
    /// Opening the document failed (bad language definition or text).
    Open(SessionError),
    /// A semantic query was addressed to a document opened without a
    /// semantic pass (see [`Workspace::open_with_semantics`]).
    NoSemantics(DocId),
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::UnknownDoc(d) => write!(f, "{d} is not open"),
            WorkspaceError::Poisoned(d) => write!(f, "{d} was poisoned by a panicked operation"),
            WorkspaceError::ShuttingDown => write!(f, "workspace is shutting down"),
            WorkspaceError::Open(e) => write!(f, "open failed: {e}"),
            WorkspaceError::NoSemantics(d) => {
                write!(f, "{d} was opened without semantic analysis")
            }
        }
    }
}

/// A semantic question addressed to one document (answered on its home
/// shard from the session-resident [`SemState`], no dag re-walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemQuery {
    /// Resolve the identifier at a byte offset.
    ResolveAt(usize),
    /// All use sites of a name (the def-use index).
    UsesOf(String),
    /// Whether the construct at a byte offset is ambiguous, and if so
    /// whether disambiguation picked a reading.
    AmbiguityAt(usize),
}

/// The answer to a [`SemQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemAnswer {
    /// Resolution of the identifier at the offset (`None` when the offset
    /// holds no analyzed identifier).
    Resolution(Option<SemInfo>),
    /// Use sites, in document order.
    Uses(Vec<NodeId>),
    /// `(inside an ambiguous region, selection exists)`.
    Ambiguity(bool, bool),
}

impl std::error::Error for WorkspaceError {}

/// The successful result of one applied edit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Per-document command sequence number (1 for the first batch after
    /// open, strictly increasing — the ordering witness).
    pub seq: u64,
    /// Edits applied (each followed by a reparse cycle).
    pub edits_applied: usize,
    /// Edits whose reparse refused incorporation (tree kept the previous
    /// version; the edit stays flagged in the session).
    pub edits_refused: usize,
    /// Whether every reparse in the batch incorporated fully.
    pub incorporated: bool,
    /// The last reparse cycle's per-stage report.
    pub last_report: ReparseReport,
    /// Shard service time of the whole batch (queue wait excluded).
    pub latency: Duration,
}

/// Per-document command result.
pub type DocResult = Result<ApplyOutcome, WorkspaceError>;

/// One document's report within a batch [`Workspace::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocReport {
    /// The addressed document.
    pub doc: DocId,
    /// What happened on its shard.
    pub result: DocResult,
}

/// An in-flight asynchronous apply (see [`Workspace::apply_async`]).
#[must_use = "wait() retrieves the report; dropping loses it"]
pub struct PendingApply {
    doc: DocId,
    rx: OneShotReceiver<DocResult>,
}

impl PendingApply {
    /// Blocks until the shard finishes this command.
    pub fn wait(self) -> DocReport {
        let result = self.rx.recv().unwrap_or(Err(WorkspaceError::ShuttingDown));
        DocReport {
            doc: self.doc,
            result,
        }
    }
}

/// Commands executed on a document's home shard.
enum Cmd {
    Open {
        doc: DocId,
        config: SessionConfig,
        text: String,
        semantics: bool,
        reply: OneShotSender<Result<(), WorkspaceError>>,
    },
    Query {
        doc: DocId,
        query: SemQuery,
        reply: OneShotSender<Result<SemAnswer, WorkspaceError>>,
    },
    Apply {
        doc: DocId,
        edits: Vec<EditReq>,
        reply: OneShotSender<DocResult>,
    },
    Close {
        doc: DocId,
        reply: OneShotSender<bool>,
    },
    Text {
        doc: DocId,
        reply: OneShotSender<Option<String>>,
    },
}

/// Counters shared by all shards and the front end.
struct Shared {
    docs_open: AtomicU64,
    edits_applied: AtomicU64,
    reparses: AtomicU64,
    edits_refused: AtomicU64,
    docs_poisoned: AtomicU64,
    queries: AtomicU64,
    latency: LatencyHistogram,
    query_latency: LatencyHistogram,
    started: Instant,
}

/// A concurrent multi-document analysis service.
///
/// See the [crate docs](crate) for the sharding and isolation model.
pub struct Workspace {
    pool: ShardPool<Cmd>,
    shared: Arc<Shared>,
    registry: Arc<LanguageRegistry>,
    next_doc: AtomicU64,
}

impl Workspace {
    /// A workspace with `threads` shard workers, each with `queue_cap`
    /// commands of backpressure, and a fresh language registry.
    pub fn new(threads: usize, queue_cap: usize) -> Workspace {
        Workspace::with_registry(threads, queue_cap, Arc::new(LanguageRegistry::new()))
    }

    /// A workspace sharing an existing registry (several workspaces — or a
    /// workspace plus direct sessions — can reuse one set of compiled
    /// language artifacts).
    pub fn with_registry(
        threads: usize,
        queue_cap: usize,
        registry: Arc<LanguageRegistry>,
    ) -> Workspace {
        let shared = Arc::new(Shared {
            docs_open: AtomicU64::new(0),
            edits_applied: AtomicU64::new(0),
            reparses: AtomicU64::new(0),
            edits_refused: AtomicU64::new(0),
            docs_poisoned: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            query_latency: LatencyHistogram::new(),
            started: Instant::now(),
        });
        let pool = {
            let shared = Arc::clone(&shared);
            ShardPool::new(threads, queue_cap.max(1), move |_shard| {
                let shared = Arc::clone(&shared);
                let mut docs: HashMap<DocId, DocEntry> = HashMap::new();
                let mut poisoned: HashSet<DocId> = HashSet::new();
                move |cmd: Cmd| handle(&shared, &mut docs, &mut poisoned, cmd)
            })
        };
        Workspace {
            pool,
            shared,
            registry,
            next_doc: AtomicU64::new(0),
        }
    }

    /// Number of shard worker threads.
    pub fn threads(&self) -> usize {
        self.pool.shards()
    }

    /// The shared language registry.
    pub fn registry(&self) -> &Arc<LanguageRegistry> {
        &self.registry
    }

    /// The home shard of a document (stable for its lifetime).
    pub fn shard_of(&self, doc: DocId) -> usize {
        (doc.0 % self.pool.shards() as u64) as usize
    }

    /// Opens a document, compiling (or reusing) the language through the
    /// shared registry; the initial lex + batch parse runs on the home
    /// shard.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::Open`] when the definition or text is invalid,
    /// [`WorkspaceError::ShuttingDown`] when the pool is closing.
    pub fn open(
        &self,
        grammar: Grammar,
        lexdef: LexerDef,
        text: &str,
    ) -> Result<DocId, WorkspaceError> {
        let config = self
            .registry
            .get_or_compile(grammar, lexdef)
            .map_err(WorkspaceError::Open)?;
        self.open_with(&config, text)
    }

    /// Opens a document from an already compiled configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`Workspace::open`].
    pub fn open_with(&self, config: &SessionConfig, text: &str) -> Result<DocId, WorkspaceError> {
        self.open_inner(config, text, false)
    }

    /// Opens a document with an incremental semantic pass attached: the
    /// home shard builds a [`SemState`] over the fresh tree and keeps it
    /// current across every reparse, so [`Workspace::query`] answers from
    /// retained facts instead of re-walking the dag.
    ///
    /// # Errors
    ///
    /// Same contract as [`Workspace::open`].
    pub fn open_with_semantics(
        &self,
        config: &SessionConfig,
        text: &str,
    ) -> Result<DocId, WorkspaceError> {
        self.open_inner(config, text, true)
    }

    fn open_inner(
        &self,
        config: &SessionConfig,
        text: &str,
        semantics: bool,
    ) -> Result<DocId, WorkspaceError> {
        let doc = DocId(self.next_doc.fetch_add(1, Ordering::Relaxed));
        let (reply, rx) = oneshot();
        let cmd = Cmd::Open {
            doc,
            config: config.clone(),
            text: text.to_string(),
            semantics,
            reply,
        };
        if self.pool.submit(self.shard_of(doc), cmd).is_err() {
            return Err(WorkspaceError::ShuttingDown);
        }
        match rx.recv() {
            Some(Ok(())) => Ok(doc),
            Some(Err(e)) => Err(e),
            None => Err(WorkspaceError::ShuttingDown),
        }
    }

    /// Answers a semantic question on the document's home shard. The
    /// shard reads the session-resident semantic state — no dag re-walk,
    /// no cross-shard coordination; service time lands in the workspace's
    /// query latency histogram.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::NoSemantics`] when the document was opened
    /// without [`Workspace::open_with_semantics`], plus the usual
    /// unknown/poisoned/shutdown errors.
    pub fn query(&self, doc: DocId, query: SemQuery) -> Result<SemAnswer, WorkspaceError> {
        let (reply, rx) = oneshot();
        let cmd = Cmd::Query { doc, query, reply };
        if self.pool.submit(self.shard_of(doc), cmd).is_err() {
            return Err(WorkspaceError::ShuttingDown);
        }
        rx.recv().unwrap_or(Err(WorkspaceError::ShuttingDown))
    }

    /// Applies a batch of edits addressed to documents: each document's
    /// edit list is scheduled on its home shard (cross-document
    /// parallelism for free, per-document order preserved) and the call
    /// blocks until every report is in. Reports come back in batch order;
    /// a document listed twice gets two reports, processed in order.
    pub fn apply(&self, batch: Vec<(DocId, Vec<EditReq>)>) -> Vec<DocReport> {
        let mut pending: Vec<Result<PendingApply, DocReport>> = Vec::with_capacity(batch.len());
        for (doc, edits) in batch {
            pending.push(self.apply_async(doc, edits).map_err(|e| DocReport {
                doc,
                result: Err(e),
            }));
        }
        pending
            .into_iter()
            .map(|p| match p {
                Ok(pending) => pending.wait(),
                Err(report) => report,
            })
            .collect()
    }

    /// Schedules one document's edit batch without waiting. Blocks only on
    /// shard-queue backpressure.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::ShuttingDown`] when the pool refused the command.
    pub fn apply_async(
        &self,
        doc: DocId,
        edits: Vec<EditReq>,
    ) -> Result<PendingApply, WorkspaceError> {
        let (reply, rx) = oneshot();
        let cmd = Cmd::Apply { doc, edits, reply };
        if self.pool.submit(self.shard_of(doc), cmd).is_err() {
            return Err(WorkspaceError::ShuttingDown);
        }
        Ok(PendingApply { doc, rx })
    }

    /// Closes a document, dropping its session. Returns whether it was
    /// open (false for unknown, already closed, or poisoned ids — closing
    /// a poisoned id clears its tombstone).
    pub fn close(&self, doc: DocId) -> bool {
        let (reply, rx) = oneshot();
        if self
            .pool
            .submit(self.shard_of(doc), Cmd::Close { doc, reply })
            .is_err()
        {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// The document's current text (None for unknown/poisoned ids). O(N);
    /// a testing and tooling convenience, not a hot path.
    pub fn text(&self, doc: DocId) -> Option<String> {
        let (reply, rx) = oneshot();
        if self
            .pool
            .submit(self.shard_of(doc), Cmd::Text { doc, reply })
            .is_err()
        {
            return None;
        }
        rx.recv().flatten()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> WorkspaceMetrics {
        let edits = self.shared.edits_applied.load(Ordering::Relaxed);
        let elapsed = self.shared.started.elapsed();
        WorkspaceMetrics {
            docs_open: self.shared.docs_open.load(Ordering::Relaxed) as usize,
            edits_applied: edits,
            reparses: self.shared.reparses.load(Ordering::Relaxed),
            edits_refused: self.shared.edits_refused.load(Ordering::Relaxed),
            docs_poisoned: self.shared.docs_poisoned.load(Ordering::Relaxed),
            elapsed,
            edits_per_sec: edits as f64 / elapsed.as_secs_f64().max(1e-9),
            queue_depth: self.pool.queue_depth(),
            shard_busy: self.pool.busy_time(),
            p50: self.shared.latency.percentile(0.50),
            p95: self.shared.latency.percentile(0.95),
            p99: self.shared.latency.percentile(0.99),
            queries: self.shared.queries.load(Ordering::Relaxed),
            query_p50: self.shared.query_latency.percentile(0.50),
            query_p95: self.shared.query_latency.percentile(0.95),
            query_p99: self.shared.query_latency.percentile(0.99),
        }
    }

    /// Shuts down: refuses new commands, drains every accepted command,
    /// joins the workers, and returns the final metrics.
    pub fn shutdown(mut self) -> WorkspaceMetrics {
        self.pool.shutdown();
        self.metrics()
    }
}

/// Shard-resident state of one document.
struct DocEntry {
    session: Session,
    seq: u64,
}

/// Executes one command against the shard's documents. Runs on a shard
/// worker; panics inside document operations are caught here and poison
/// only the document that raised them.
fn handle(
    shared: &Shared,
    docs: &mut HashMap<DocId, DocEntry>,
    poisoned: &mut HashSet<DocId>,
    cmd: Cmd,
) {
    match cmd {
        Cmd::Open {
            doc,
            config,
            text,
            semantics,
            reply,
        } => {
            let opened = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut session = Session::new(&config, &text)?;
                if semantics {
                    let sem = SemState::new(config.grammar(), Strictness::RequireBinding);
                    session.attach_semantics(Box::new(sem));
                }
                Ok(session)
            }));
            match opened {
                Ok(Ok(session)) => {
                    docs.insert(doc, DocEntry { session, seq: 0 });
                    shared.docs_open.fetch_add(1, Ordering::Relaxed);
                    reply.send(Ok(()));
                }
                Ok(Err(e)) => reply.send(Err(WorkspaceError::Open(e))),
                Err(_) => {
                    poisoned.insert(doc);
                    shared.docs_poisoned.fetch_add(1, Ordering::Relaxed);
                    reply.send(Err(WorkspaceError::Poisoned(doc)));
                }
            }
        }
        Cmd::Apply { doc, edits, reply } => {
            if poisoned.contains(&doc) {
                reply.send(Err(WorkspaceError::Poisoned(doc)));
                return;
            }
            let Some(mut entry) = docs.remove(&doc) else {
                reply.send(Err(WorkspaceError::UnknownDoc(doc)));
                return;
            };
            let t0 = Instant::now();
            let mut applied = 0usize;
            let mut refused = 0usize;
            let mut last_report = ReparseReport::default();
            // The session is checked out of the map for the batch: on a
            // panic it is simply dropped, so no half-mutated tree is ever
            // visible again.
            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for e in &edits {
                    let t_edit = Instant::now();
                    entry.session.edit(e.start, e.removed, &e.insert);
                    let out = entry.session.reparse().expect("reparse is infallible");
                    shared.latency.record(t_edit.elapsed());
                    shared.edits_applied.fetch_add(1, Ordering::Relaxed);
                    shared.reparses.fetch_add(1, Ordering::Relaxed);
                    applied += 1;
                    if !out.incorporated {
                        refused += 1;
                        shared.edits_refused.fetch_add(1, Ordering::Relaxed);
                    }
                    last_report = out.report;
                }
            }));
            match run {
                Ok(()) => {
                    entry.seq += 1;
                    let outcome = ApplyOutcome {
                        seq: entry.seq,
                        edits_applied: applied,
                        edits_refused: refused,
                        incorporated: refused == 0,
                        last_report,
                        latency: t0.elapsed(),
                    };
                    docs.insert(doc, entry);
                    reply.send(Ok(outcome));
                }
                Err(_) => {
                    // The document dies; the shard (and every other
                    // document on it) keeps serving.
                    drop(entry);
                    poisoned.insert(doc);
                    shared.docs_poisoned.fetch_add(1, Ordering::Relaxed);
                    shared.docs_open.fetch_sub(1, Ordering::Relaxed);
                    reply.send(Err(WorkspaceError::Poisoned(doc)));
                }
            }
        }
        Cmd::Query { doc, query, reply } => {
            if poisoned.contains(&doc) {
                reply.send(Err(WorkspaceError::Poisoned(doc)));
                return;
            }
            let Some(entry) = docs.get(&doc) else {
                reply.send(Err(WorkspaceError::UnknownDoc(doc)));
                return;
            };
            if entry.session.semantics().is_none() {
                reply.send(Err(WorkspaceError::NoSemantics(doc)));
                return;
            }
            let t0 = Instant::now();
            let answer = match query {
                SemQuery::ResolveAt(offset) => {
                    SemAnswer::Resolution(entry.session.semantic_info_at(offset))
                }
                SemQuery::UsesOf(name) => SemAnswer::Uses(entry.session.semantic_uses_of(&name)),
                SemQuery::AmbiguityAt(offset) => match entry.session.semantic_info_at(offset) {
                    Some(info) => SemAnswer::Ambiguity(info.ambiguous, info.resolved),
                    None => SemAnswer::Ambiguity(false, false),
                },
            };
            shared.query_latency.record(t0.elapsed());
            shared.queries.fetch_add(1, Ordering::Relaxed);
            reply.send(Ok(answer));
        }
        Cmd::Close { doc, reply } => {
            let existed = docs.remove(&doc).is_some();
            if existed {
                shared.docs_open.fetch_sub(1, Ordering::Relaxed);
            }
            poisoned.remove(&doc);
            reply.send(existed);
        }
        Cmd::Text { doc, reply } => {
            reply.send(docs.get(&doc).map(|e| e.session.text()));
        }
    }
}
