//! The concurrent multi-document service: N [`Session`]s scheduled as
//! stealable documents over a [`ShardPool`].
//!
//! ## Scheduling model
//!
//! Every open document owns a bounded FIFO **mailbox** of commands plus a
//! current **owner shard** (initially `doc_id % threads`). Submitting a
//! command pushes it into the mailbox; if the document is not already
//! scheduled, its slot is placed on the owner's run-queue. Workers drain
//! their own run-queue front-first and, when idle, **steal whole
//! documents** from the back of other shards' queues: ownership migrates
//! to the thief under a per-document migration epoch — `shard_of(doc)`
//! rebinds so in-flight submits land on the new owner — and because the
//! document's entire mailbox travels with it, *per-document* FIFO order
//! is structural no matter how often the document migrates. A `scheduled`
//! flag guarantees a document is processed by at most one worker at a
//! time, so a session is still touched by exactly one thread at any
//! moment even though that thread is no longer fixed.
//!
//! ## Edit coalescing
//!
//! On dequeue a worker drains the *entire* mailbox and walks it in order.
//! Consecutive `apply` commands form one service run: their edits are fed
//! into the session's pending-edit buffer and folded into a single
//! covering damage region ([`wg_document::Edit::merge`]), with one
//! reparse per *proximity group* — a new cycle is flushed only when the
//! next edit lands farther than a small gap from the covering span
//! ([`wg_document::Edit::gap_to`]), because merging distant edits would
//! drag the untouched interior into the damage region. A burst of
//! self-cancelling edits therefore collapses to one near-no-op reparse,
//! while every reply slot still receives its own [`ApplyOutcome`]
//! carrying the shared cycle's report.
//!
//! The immutable language artifacts (grammar, LALR table, compiled lexer)
//! are shared across all shards via the thread-safe [`LanguageRegistry`];
//! everything mutable — the rope, the dag arena, the token tape, the
//! pooled parser scratch — lives inside the document's [`Session`].
//!
//! ## Snapshot-isolated reads
//!
//! Each document additionally publishes an immutable
//! [`Snapshot`](wg_core::Snapshot) — dag chunks, token tape, semantic fact
//! view — after the open and after every apply run (while the session is
//! still checked out, *before* the apply replies are sent, so a caller
//! that waited for its apply always sees its own writes). Semantic
//! queries are answered **on the caller's thread** from that snapshot:
//! they never enter the mailbox, never wait behind edits, and any number
//! of them run concurrently against one version while the owner shard
//! keeps reparsing the next. The mailbox query path survives as the
//! fallback for documents without a published snapshot (open still in
//! flight, poisoned, closed), which also preserves the exact error
//! answers for those states.
//!
//! ## Failure isolation
//!
//! A panicking operation (a bounds-violating edit, a parser invariant
//! failure) is caught on the worker and poisons *only its own document*:
//! the session is dropped and the poisoned flag lives in the document
//! slot, so it follows the document across migrations — later commands
//! answer [`WorkspaceError::Poisoned`] no matter which shard serves them.
//! Shutdown refuses new commands, drains every scheduled document, joins
//! the workers, then sweeps mailboxes so any caller that raced the close
//! observes [`WorkspaceError::ShuttingDown`] instead of hanging.

use crate::metrics::{LatencyHistogram, WorkspaceMetrics};
use crate::pool::{Requeue, ShardPool};
use crate::sync::{oneshot, OneShotReceiver, OneShotSender};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wg_core::{
    IncrStats, LangSlot, LanguageRegistry, ReparseReport, SemInfo, Session, SessionConfig,
    SessionError, Snapshot, UpdateError,
};
use wg_dag::NodeId;
use wg_document::Edit;
use wg_grammar::{Grammar, GrammarDelta};
use wg_lexer::LexerDef;
use wg_sem::{SemState, Strictness};

/// Maximum byte distance between a pending covering damage region and the
/// next edit for the two to share one reparse cycle. Edits within the gap
/// coalesce (one relex over a slightly wider span beats a whole extra
/// cycle); edits beyond it flush the current group first, keeping damage
/// proportional to what actually changed.
const COALESCE_GAP: usize = 64;

/// Identifies one document within a [`Workspace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u64);

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// One textual edit addressed to a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditReq {
    /// Byte offset of the replaced range.
    pub start: usize,
    /// Bytes removed.
    pub removed: usize,
    /// Replacement text.
    pub insert: String,
}

impl EditReq {
    /// Replaces `removed` bytes at `start` with `insert`.
    pub fn replace(start: usize, removed: usize, insert: &str) -> EditReq {
        EditReq {
            start,
            removed,
            insert: insert.to_string(),
        }
    }

    /// Inserts `insert` at `start`.
    pub fn insert(start: usize, insert: &str) -> EditReq {
        EditReq::replace(start, 0, insert)
    }

    /// Deletes `removed` bytes at `start`.
    pub fn delete(start: usize, removed: usize) -> EditReq {
        EditReq::replace(start, removed, "")
    }
}

/// Why a workspace command failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkspaceError {
    /// No open document has this id (never opened, or closed).
    UnknownDoc(DocId),
    /// A previous operation on this document panicked; its session was
    /// dropped and the id is permanently dead.
    Poisoned(DocId),
    /// The workspace is shutting down and refused the command.
    ShuttingDown,
    /// Opening the document failed (bad language definition or text).
    Open(SessionError),
    /// A semantic query was addressed to a document opened without a
    /// semantic pass (see [`Workspace::open_with_semantics`]).
    NoSemantics(DocId),
    /// The registry rejected a grammar update (unknown base, invalid
    /// delta, or untabulatable result).
    GrammarUpdate(UpdateError),
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::UnknownDoc(d) => write!(f, "{d} is not open"),
            WorkspaceError::Poisoned(d) => write!(f, "{d} was poisoned by a panicked operation"),
            WorkspaceError::ShuttingDown => write!(f, "workspace is shutting down"),
            WorkspaceError::Open(e) => write!(f, "open failed: {e}"),
            WorkspaceError::NoSemantics(d) => {
                write!(f, "{d} was opened without semantic analysis")
            }
            WorkspaceError::GrammarUpdate(e) => write!(f, "grammar update failed: {e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

/// A semantic question addressed to one document (answered on its current
/// owner shard from the session-resident [`SemState`], no dag re-walk).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemQuery {
    /// Resolve the identifier at a byte offset.
    ResolveAt(usize),
    /// All use sites of a name (the def-use index).
    UsesOf(String),
    /// Whether the construct at a byte offset is ambiguous, and if so
    /// whether disambiguation picked a reading.
    AmbiguityAt(usize),
}

/// The answer to a [`SemQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemAnswer {
    /// Resolution of the identifier at the offset (`None` when the offset
    /// holds no analyzed identifier).
    Resolution(Option<SemInfo>),
    /// Use sites, in document order.
    Uses(Vec<NodeId>),
    /// `(inside an ambiguous region, selection exists)`.
    Ambiguity(bool, bool),
}

/// The successful result of one applied edit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Per-document command sequence number (1 for the first batch after
    /// open, strictly increasing — the ordering witness).
    pub seq: u64,
    /// Edits fed into the session's pending buffer by this command.
    pub edits_applied: usize,
    /// Edits still refused by the tree when this command's service run
    /// finished (the text holds them; the tree kept the previous version
    /// and the edits stay flagged in the session for the next retry).
    pub edits_refused: usize,
    /// Whether every edit of this command was incorporated by the end of
    /// its service run.
    pub incorporated: bool,
    /// The final reparse cycle report of the service run this command was
    /// coalesced into — shared by every command in the run.
    pub last_report: ReparseReport,
    /// Shard service time of the whole run (queue wait excluded).
    pub latency: Duration,
}

/// Per-document command result.
pub type DocResult = Result<ApplyOutcome, WorkspaceError>;

/// The outcome of one [`Workspace::update_grammar`] broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrammarSwapReport {
    /// The table epoch the registry installed.
    pub epoch: u64,
    /// Incremental table-derivation statistics (state/row reuse and the
    /// from-scratch fallback flag).
    pub stats: IncrStats,
    /// Documents on the new table epoch when their nudge completed —
    /// whether the nudge's reparse adopted it or an interleaved apply run
    /// beat the nudge to the swap.
    pub sessions_swapped: usize,
    /// Documents not on the new epoch after their nudge: other languages
    /// (their slot epoch is unchanged), sessions whose committed text the
    /// new grammar rejects (they retry at every later reparse), or
    /// documents that were poisoned/closed mid-broadcast.
    pub sessions_pending: usize,
}

/// One document's report within a batch [`Workspace::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct DocReport {
    /// The addressed document.
    pub doc: DocId,
    /// What happened on its shard.
    pub result: DocResult,
}

/// An in-flight asynchronous apply (see [`Workspace::apply_async`]).
#[must_use = "wait() retrieves the report; dropping loses it"]
pub struct PendingApply {
    doc: DocId,
    rx: OneShotReceiver<DocResult>,
}

impl PendingApply {
    /// Blocks until the shard finishes this command.
    pub fn wait(self) -> DocReport {
        let result = self.rx.recv().unwrap_or(Err(WorkspaceError::ShuttingDown));
        DocReport {
            doc: self.doc,
            result,
        }
    }
}

/// An in-flight asynchronous query (see [`Workspace::query_async`]).
/// Queries served from a published snapshot are already answered when
/// this handle is returned; mailbox-fallback queries resolve when the
/// owner shard replies.
#[must_use = "wait() retrieves the answer; dropping loses it"]
pub struct PendingQuery {
    inner: PendingQueryInner,
}

enum PendingQueryInner {
    /// Answered on the caller's thread from the published snapshot.
    Ready(Result<SemAnswer, WorkspaceError>),
    /// Queued in the document's mailbox (no snapshot was available).
    Mailbox(OneShotReceiver<Result<SemAnswer, WorkspaceError>>),
}

impl PendingQuery {
    /// Retrieves the answer, blocking only if the query went through the
    /// mailbox fallback.
    pub fn wait(self) -> Result<SemAnswer, WorkspaceError> {
        match self.inner {
            PendingQueryInner::Ready(answer) => answer,
            PendingQueryInner::Mailbox(rx) => {
                rx.recv().unwrap_or(Err(WorkspaceError::ShuttingDown))
            }
        }
    }
}

/// Commands queued in a document's mailbox.
enum Cmd {
    Open {
        config: SessionConfig,
        text: String,
        semantics: bool,
        reply: OneShotSender<Result<(), WorkspaceError>>,
    },
    Query {
        query: SemQuery,
        reply: OneShotSender<Result<SemAnswer, WorkspaceError>>,
    },
    Apply {
        edits: Vec<EditReq>,
        reply: OneShotSender<DocResult>,
    },
    Close {
        reply: OneShotSender<bool>,
    },
    /// Grammar hot-swap nudge, broadcast by [`Workspace::update_grammar`]
    /// after the registry installed a new table epoch: run one reparse so
    /// the session adopts the new table now rather than at its next edit.
    /// Replies whether this document is on `epoch` of the updated `lang`
    /// slot afterwards — true also when an interleaved apply run adopted
    /// it organically just before the nudge landed; documents of other
    /// languages, or whose text the new grammar rejects, reply `false`.
    UpdateGrammar {
        lang: Arc<LangSlot>,
        epoch: u64,
        reply: OneShotSender<Result<bool, WorkspaceError>>,
    },
    Text {
        reply: OneShotSender<Option<String>>,
    },
    Dump {
        reply: OneShotSender<Option<String>>,
    },
}

/// Mailbox bookkeeping, all under one lock: the command FIFO, the
/// scheduling handshake, and the ownership binding.
struct MailState {
    queue: VecDeque<Cmd>,
    /// True while the document sits on a run-queue or is being processed.
    /// Set by the submitter that enqueues the slot, cleared by the worker
    /// only after re-checking the queue is empty — so a document is
    /// processed by at most one worker, and no push is ever stranded.
    scheduled: bool,
    /// Current owner shard; rebound by the worker that steals the slot.
    owner: usize,
    /// Bumped on every ownership rebind (monotone migration witness).
    epoch: u64,
    closed: bool,
}

/// The bounded per-document command mailbox.
struct Mailbox {
    state: Mutex<MailState>,
    not_full: Condvar,
    cap: usize,
}

impl Mailbox {
    fn new(cap: usize, owner: usize) -> Mailbox {
        Mailbox {
            state: Mutex::new(MailState {
                queue: VecDeque::new(),
                scheduled: false,
                owner,
                epoch: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues `cmd`, blocking while the mailbox is full (backpressure).
    /// Returns the owner shard to schedule the document on when this push
    /// transitioned it to scheduled, `None` when it was already scheduled.
    ///
    /// # Errors
    ///
    /// Returns the command back when the mailbox is closed (shutdown).
    fn push(&self, cmd: Cmd, depth: &[AtomicU64]) -> Result<Option<usize>, Cmd> {
        let mut st = self.state.lock().expect("mailbox lock");
        loop {
            if st.closed {
                return Err(cmd);
            }
            if st.queue.len() < self.cap {
                break;
            }
            st = self.not_full.wait(st).expect("mailbox lock");
        }
        st.queue.push_back(cmd);
        depth[st.owner].fetch_add(1, Ordering::Relaxed);
        if st.scheduled {
            Ok(None)
        } else {
            st.scheduled = true;
            Ok(Some(st.owner))
        }
    }

    /// Worker entry: rebinds ownership to `me` if the slot was stolen
    /// (moving the queued-depth charge between shard gauges and bumping
    /// the migration epoch) and drains every queued command. Returns the
    /// batch and whether a migration happened.
    fn begin(&self, me: usize, depth: &[AtomicU64]) -> (Vec<Cmd>, bool) {
        let mut st = self.state.lock().expect("mailbox lock");
        let queued = st.queue.len() as u64;
        depth[st.owner].fetch_sub(queued, Ordering::Relaxed);
        let migrated = st.owner != me;
        if migrated {
            st.owner = me;
            st.epoch += 1;
        }
        let batch: Vec<Cmd> = st.queue.drain(..).collect();
        drop(st);
        self.not_full.notify_all();
        (batch, migrated)
    }

    /// Worker exit: commands that arrived during processing keep the slot
    /// scheduled — the worker must push it back on the returned shard's
    /// run-queue. An empty mailbox clears the flag so the next push
    /// re-schedules.
    fn finish(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("mailbox lock");
        if st.queue.is_empty() {
            st.scheduled = false;
            None
        } else {
            Some(st.owner)
        }
    }

    /// Closes the mailbox (pushes fail, blocked pushers wake) and removes
    /// any stranded commands; dropping them drops their reply senders, so
    /// waiting callers observe `ShuttingDown` instead of hanging.
    fn close(&self, depth: &[AtomicU64]) -> Vec<Cmd> {
        let mut st = self.state.lock().expect("mailbox lock");
        st.closed = true;
        let queued = st.queue.len() as u64;
        depth[st.owner].fetch_sub(queued, Ordering::Relaxed);
        let stranded: Vec<Cmd> = st.queue.drain(..).collect();
        drop(st);
        self.not_full.notify_all();
        stranded
    }

    fn owner(&self) -> usize {
        self.state.lock().expect("mailbox lock").owner
    }

    fn epoch(&self) -> u64 {
        self.state.lock().expect("mailbox lock").epoch
    }
}

/// Session-side state of one document, touched only by the worker that
/// currently has the slot checked out.
struct DocState {
    session: Option<Session>,
    seq: u64,
    poisoned: bool,
}

/// One document: its mailbox (scheduling + FIFO) and its session state.
/// The whole slot migrates between shards; nothing about a document is
/// pinned to the thread that opened it.
struct DocSlot {
    doc: DocId,
    mailbox: Mailbox,
    state: Mutex<DocState>,
    /// The latest published snapshot — the lock-free-in-spirit read slot
    /// (a `Mutex` held only for the `Arc` clone/swap, never across a
    /// query). `None` until the open completes and again after poison or
    /// close, which routes readers to the mailbox fallback and its exact
    /// error answers.
    snapshot: Mutex<Option<Arc<Snapshot>>>,
    /// Command seq the published snapshot reflects (the writer's publish
    /// watermark).
    snap_seq: AtomicU64,
    /// Highest apply command seq handed to this document so far; the
    /// distance to `snap_seq` at read time is the snapshot lag gauge.
    latest_seq: AtomicU64,
    /// Dag versions currently pinned by live snapshots of this document
    /// (sampled from the arena's pin registry at each publish).
    pinned: AtomicU64,
}

impl DocSlot {
    /// The published snapshot, if any (an `Arc` clone; the lock is not
    /// held while the caller queries).
    fn read_snapshot(&self) -> Option<Arc<Snapshot>> {
        self.snapshot.lock().expect("snapshot slot lock").clone()
    }

    /// Swaps in a fresh snapshot (or clears it on poison/close).
    fn publish_snapshot(&self, snap: Option<Arc<Snapshot>>) {
        *self.snapshot.lock().expect("snapshot slot lock") = snap;
    }
}

/// Scheduling-protocol tracing, enabled by the `WG_TRACE` env var —
/// diagnostic only, compiled in but a single cached boolean check when off.
macro_rules! wg_trace {
    ($($arg:tt)*) => {
        if *crate::workspace::TRACE {
            eprintln!($($arg)*);
        }
    };
}

pub(crate) static TRACE: std::sync::LazyLock<bool> =
    std::sync::LazyLock::new(|| std::env::var_os("WG_TRACE").is_some());

/// Counters shared by all shards and the front end.
struct Shared {
    docs: Mutex<HashMap<DocId, Arc<DocSlot>>>,
    /// Mailbox commands charged to each document's current owner shard —
    /// the live per-shard queue-depth gauge.
    depth: Vec<AtomicU64>,
    closing: AtomicBool,
    docs_open: AtomicU64,
    edits_applied: AtomicU64,
    reparses: AtomicU64,
    edits_refused: AtomicU64,
    coalesced_edits: AtomicU64,
    migrations: AtomicU64,
    docs_poisoned: AtomicU64,
    queries: AtomicU64,
    /// Session-level table adoptions observed by grammar-update nudges and
    /// organic reparses.
    grammar_swaps: AtomicU64,
    /// Highest table epoch installed via [`Workspace::update_grammar`].
    table_epoch: AtomicU64,
    /// Queries answered on the caller's thread from a published snapshot.
    snapshot_reads: AtomicU64,
    /// Maximum apply-seq staleness ever observed at a snapshot read.
    snapshot_lag: AtomicU64,
    latency: LatencyHistogram,
    query_latency: LatencyHistogram,
    started: Instant,
}

/// A concurrent multi-document analysis service.
///
/// See the [crate docs](crate) for the scheduling and isolation model.
pub struct Workspace {
    pool: ShardPool<Arc<DocSlot>>,
    shared: Arc<Shared>,
    registry: Arc<LanguageRegistry>,
    next_doc: AtomicU64,
    mailbox_cap: usize,
}

impl Workspace {
    /// A workspace with `threads` shard workers, each document with
    /// `queue_cap` commands of mailbox backpressure, and a fresh language
    /// registry.
    pub fn new(threads: usize, queue_cap: usize) -> Workspace {
        Workspace::with_registry(threads, queue_cap, Arc::new(LanguageRegistry::new()))
    }

    /// A workspace sharing an existing registry (several workspaces — or a
    /// workspace plus direct sessions — can reuse one set of compiled
    /// language artifacts).
    pub fn with_registry(
        threads: usize,
        queue_cap: usize,
        registry: Arc<LanguageRegistry>,
    ) -> Workspace {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            docs: Mutex::new(HashMap::new()),
            depth: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            closing: AtomicBool::new(false),
            docs_open: AtomicU64::new(0),
            edits_applied: AtomicU64::new(0),
            reparses: AtomicU64::new(0),
            edits_refused: AtomicU64::new(0),
            coalesced_edits: AtomicU64::new(0),
            migrations: AtomicU64::new(0),
            docs_poisoned: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            grammar_swaps: AtomicU64::new(0),
            table_epoch: AtomicU64::new(0),
            snapshot_reads: AtomicU64::new(0),
            snapshot_lag: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            query_latency: LatencyHistogram::new(),
            started: Instant::now(),
        });
        let pool = {
            let shared = Arc::clone(&shared);
            ShardPool::new(threads, move |shard, requeue| {
                let shared = Arc::clone(&shared);
                move |slot: Arc<DocSlot>, stolen| {
                    process_slot(&shared, &requeue, shard, &slot, stolen)
                }
            })
        };
        Workspace {
            pool,
            shared,
            registry,
            next_doc: AtomicU64::new(0),
            mailbox_cap: queue_cap.max(1),
        }
    }

    /// Number of shard worker threads.
    pub fn threads(&self) -> usize {
        self.pool.shards()
    }

    /// The shared language registry.
    pub fn registry(&self) -> &Arc<LanguageRegistry> {
        &self.registry
    }

    /// The shard currently owning a document. Initially `doc_id %
    /// threads`; rebound every time an idle shard steals the document, so
    /// this is a racy gauge, not a stable address — submits consult the
    /// binding under the mailbox lock. Unknown documents report their
    /// would-be home shard.
    pub fn shard_of(&self, doc: DocId) -> usize {
        match self.slot_of(doc) {
            Some(slot) => slot.mailbox.owner(),
            None => (doc.0 % self.pool.shards() as u64) as usize,
        }
    }

    /// The document's migration epoch: 0 at open, +1 per ownership
    /// rebind. `None` for unknown documents.
    pub fn epoch_of(&self, doc: DocId) -> Option<u64> {
        self.slot_of(doc).map(|s| s.mailbox.epoch())
    }

    fn slot_of(&self, doc: DocId) -> Option<Arc<DocSlot>> {
        self.shared
            .docs
            .lock()
            .expect("docs lock")
            .get(&doc)
            .cloned()
    }

    /// Pushes `cmd` into the document's mailbox and schedules the slot on
    /// its owner shard when needed.
    fn submit(&self, slot: &Arc<DocSlot>, cmd: Cmd) -> Result<(), WorkspaceError> {
        if self.shared.closing.load(Ordering::Acquire) {
            return Err(WorkspaceError::ShuttingDown);
        }
        match slot.mailbox.push(cmd, &self.shared.depth) {
            Err(_) => Err(WorkspaceError::ShuttingDown),
            Ok(Some(shard)) => {
                wg_trace!("submit doc={} schedule shard={shard}", slot.doc.0);
                if self.pool.submit(shard, Arc::clone(slot)).is_err() {
                    // Raced the close: the command sits in the mailbox and
                    // the shutdown sweep will drop it (reply: ShuttingDown).
                    return Err(WorkspaceError::ShuttingDown);
                }
                Ok(())
            }
            Ok(None) => {
                wg_trace!("submit doc={} already-scheduled", slot.doc.0);
                Ok(())
            }
        }
    }

    /// Opens a document, compiling (or reusing) the language through the
    /// shared registry; the initial lex + batch parse runs on a shard.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::Open`] when the definition or text is invalid,
    /// [`WorkspaceError::ShuttingDown`] when the pool is closing.
    pub fn open(
        &self,
        grammar: Grammar,
        lexdef: LexerDef,
        text: &str,
    ) -> Result<DocId, WorkspaceError> {
        let config = self
            .registry
            .get_or_compile(grammar, lexdef)
            .map_err(WorkspaceError::Open)?;
        self.open_with(&config, text)
    }

    /// Opens a document from an already compiled configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`Workspace::open`].
    pub fn open_with(&self, config: &SessionConfig, text: &str) -> Result<DocId, WorkspaceError> {
        self.open_inner(config, text, false)
    }

    /// Opens a document with an incremental semantic pass attached: the
    /// owning shard builds a [`SemState`] over the fresh tree and keeps it
    /// current across every reparse, so [`Workspace::query`] answers from
    /// retained facts instead of re-walking the dag.
    ///
    /// # Errors
    ///
    /// Same contract as [`Workspace::open`].
    pub fn open_with_semantics(
        &self,
        config: &SessionConfig,
        text: &str,
    ) -> Result<DocId, WorkspaceError> {
        self.open_inner(config, text, true)
    }

    fn open_inner(
        &self,
        config: &SessionConfig,
        text: &str,
        semantics: bool,
    ) -> Result<DocId, WorkspaceError> {
        let doc = DocId(self.next_doc.fetch_add(1, Ordering::Relaxed));
        let home = (doc.0 % self.pool.shards() as u64) as usize;
        let slot = Arc::new(DocSlot {
            doc,
            mailbox: Mailbox::new(self.mailbox_cap, home),
            state: Mutex::new(DocState {
                session: None,
                seq: 0,
                poisoned: false,
            }),
            snapshot: Mutex::new(None),
            snap_seq: AtomicU64::new(0),
            latest_seq: AtomicU64::new(0),
            pinned: AtomicU64::new(0),
        });
        self.shared
            .docs
            .lock()
            .expect("docs lock")
            .insert(doc, Arc::clone(&slot));
        let (reply, rx) = oneshot();
        let cmd = Cmd::Open {
            config: config.clone(),
            text: text.to_string(),
            semantics,
            reply,
        };
        if let Err(e) = self.submit(&slot, cmd) {
            self.shared.docs.lock().expect("docs lock").remove(&doc);
            return Err(e);
        }
        match rx.recv() {
            Some(Ok(())) => Ok(doc),
            Some(Err(e)) => Err(e),
            None => Err(WorkspaceError::ShuttingDown),
        }
    }

    /// Answers a semantic question from the document's latest published
    /// snapshot, **on the calling thread** — no mailbox, no shard, no
    /// waiting behind edits; any number of callers query concurrently
    /// while the owner shard keeps editing. Service time lands in the
    /// workspace's query latency histogram either way.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::NoSemantics`] when the document was opened
    /// without [`Workspace::open_with_semantics`], plus the usual
    /// unknown/poisoned/shutdown errors.
    pub fn query(&self, doc: DocId, query: SemQuery) -> Result<SemAnswer, WorkspaceError> {
        self.query_async(doc, query)?.wait()
    }

    /// Issues a semantic question without waiting for the answer.
    ///
    /// When the document has a published snapshot carrying a semantic
    /// view, the query is answered immediately on the calling thread
    /// against that version: the answer reflects every apply whose report
    /// was already delivered (publish happens before apply replies), but
    /// not edits still in flight — snapshot isolation, not FIFO ordering.
    /// Otherwise (open still in flight, poisoned, closed, or a semantic
    /// pass without snapshot support) the query falls back to the
    /// document's mailbox and is answered on its owner shard in FIFO
    /// order with the exact per-state errors.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::UnknownDoc`] immediately for unopened ids,
    /// [`WorkspaceError::ShuttingDown`] when the workspace refused the
    /// command.
    pub fn query_async(&self, doc: DocId, query: SemQuery) -> Result<PendingQuery, WorkspaceError> {
        let Some(slot) = self.slot_of(doc) else {
            return Err(WorkspaceError::UnknownDoc(doc));
        };
        if let Some(snap) = slot.read_snapshot() {
            if snap.has_semantics() {
                let t0 = Instant::now();
                let answer = answer_from_snapshot(&snap, &query);
                self.shared.query_latency.record(t0.elapsed());
                self.shared.queries.fetch_add(1, Ordering::Relaxed);
                self.shared.snapshot_reads.fetch_add(1, Ordering::Relaxed);
                let lag = slot
                    .latest_seq
                    .load(Ordering::Relaxed)
                    .saturating_sub(slot.snap_seq.load(Ordering::Relaxed));
                self.shared.snapshot_lag.fetch_max(lag, Ordering::Relaxed);
                return Ok(PendingQuery {
                    inner: PendingQueryInner::Ready(Ok(answer)),
                });
            }
            // A snapshot without a semantic view: let the mailbox path
            // produce its NoSemantics answer (and stay future-proof for
            // passes that answer live but publish no view).
        }
        let (reply, rx) = oneshot();
        self.submit(&slot, Cmd::Query { query, reply })?;
        Ok(PendingQuery {
            inner: PendingQueryInner::Mailbox(rx),
        })
    }

    /// Applies a batch of edits addressed to documents: each document's
    /// edit list is queued in mailbox order (cross-document parallelism
    /// for free, per-document order preserved) and the call blocks until
    /// every report is in. Reports come back in batch order; a document
    /// listed twice gets two reports, processed in order.
    pub fn apply(&self, batch: Vec<(DocId, Vec<EditReq>)>) -> Vec<DocReport> {
        let mut pending: Vec<Result<PendingApply, DocReport>> = Vec::with_capacity(batch.len());
        for (doc, edits) in batch {
            pending.push(self.apply_async(doc, edits).map_err(|e| DocReport {
                doc,
                result: Err(e),
            }));
        }
        pending
            .into_iter()
            .map(|p| match p {
                Ok(pending) => pending.wait(),
                Err(report) => report,
            })
            .collect()
    }

    /// Schedules one document's edit batch without waiting. Blocks only on
    /// mailbox backpressure.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::ShuttingDown`] when the workspace refused the
    /// command. Unknown documents are reported through the returned
    /// [`PendingApply`], matching the synchronous [`Workspace::apply`].
    pub fn apply_async(
        &self,
        doc: DocId,
        edits: Vec<EditReq>,
    ) -> Result<PendingApply, WorkspaceError> {
        let (reply, rx) = oneshot();
        match self.slot_of(doc) {
            Some(slot) => {
                self.submit(&slot, Cmd::Apply { edits, reply })?;
                // Accepted: advance the write watermark the snapshot-lag
                // gauge measures against.
                slot.latest_seq.fetch_add(1, Ordering::Relaxed);
            }
            None => reply.send(Err(WorkspaceError::UnknownDoc(doc))),
        }
        Ok(PendingApply { doc, rx })
    }

    /// Installs a grammar delta through the shared registry and nudges
    /// every open document with one reparse cycle, so sessions of the
    /// updated language adopt the new table *now* instead of at their
    /// next edit. The registry work happens once on the calling thread
    /// (incremental table derivation from the retained automaton); the
    /// per-document nudges run on the owner shards in mailbox FIFO order,
    /// behind any edits already queued — a live edit stream is never
    /// interrupted mid-cycle.
    ///
    /// Documents of other languages no-op (their slot's epoch is
    /// unchanged). A session whose committed text the new grammar rejects
    /// keeps its old table and retries adoption at every subsequent
    /// reparse; it counts into `sessions_pending`.
    ///
    /// # Errors
    ///
    /// [`WorkspaceError::GrammarUpdate`] when the registry rejects the
    /// delta (unknown base fingerprint, invalid delta, untabulatable
    /// result) and [`WorkspaceError::ShuttingDown`] when the workspace
    /// refused the broadcast.
    pub fn update_grammar(
        &self,
        delta: &GrammarDelta,
    ) -> Result<GrammarSwapReport, WorkspaceError> {
        if self.shared.closing.load(Ordering::Acquire) {
            return Err(WorkspaceError::ShuttingDown);
        }
        let update = self
            .registry
            .update_grammar(delta)
            .map_err(WorkspaceError::GrammarUpdate)?;
        self.shared
            .table_epoch
            .fetch_max(update.epoch, Ordering::Relaxed);
        // Recover the updated slot's identity: the nudge replies compare
        // against it so documents of *other* languages (whose own epochs
        // are incomparable numbers) can never be miscounted as swapped.
        let lang = self
            .registry
            .slot_by_fingerprint(delta.base_fingerprint())
            .expect("slot exists: update_grammar just succeeded on it");
        let slots: Vec<Arc<DocSlot>> = self
            .shared
            .docs
            .lock()
            .expect("docs lock")
            .values()
            .cloned()
            .collect();
        let mut waits = Vec::with_capacity(slots.len());
        for slot in &slots {
            let (reply, rx) = oneshot();
            let cmd = Cmd::UpdateGrammar {
                lang: Arc::clone(&lang),
                epoch: update.epoch,
                reply,
            };
            match self.submit(slot, cmd) {
                Ok(()) => waits.push(rx),
                // Raced the close: the table is installed (future sessions
                // use it); report the un-nudged documents as pending.
                Err(_) => drop(rx),
            }
        }
        let pending_unreached = slots.len() - waits.len();
        let mut swapped = 0usize;
        let mut pending = pending_unreached;
        for rx in waits {
            match rx.recv() {
                Some(Ok(true)) => swapped += 1,
                _ => pending += 1,
            }
        }
        Ok(GrammarSwapReport {
            epoch: update.epoch,
            stats: update.stats,
            sessions_swapped: swapped,
            sessions_pending: pending,
        })
    }

    /// Closes a document, dropping its session. Returns whether it was
    /// open (false for unknown, already closed, or poisoned ids — closing
    /// a poisoned id clears its tombstone).
    pub fn close(&self, doc: DocId) -> bool {
        let Some(slot) = self.slot_of(doc) else {
            return false;
        };
        let (reply, rx) = oneshot();
        if self.submit(&slot, Cmd::Close { reply }).is_err() {
            return false;
        }
        rx.recv().unwrap_or(false)
    }

    /// The document's current text (None for unknown/poisoned ids). O(N);
    /// a testing and tooling convenience, not a hot path.
    pub fn text(&self, doc: DocId) -> Option<String> {
        let slot = self.slot_of(doc)?;
        let (reply, rx) = oneshot();
        if self.submit(&slot, Cmd::Text { reply }).is_err() {
            return None;
        }
        rx.recv().flatten()
    }

    /// A structural dump of the document's current parse dag (None for
    /// unknown/poisoned ids). O(tree); a testing witness that the
    /// incrementally maintained tree matches a from-scratch parse, not a
    /// hot path.
    pub fn dump(&self, doc: DocId) -> Option<String> {
        let slot = self.slot_of(doc)?;
        let (reply, rx) = oneshot();
        if self.submit(&slot, Cmd::Dump { reply }).is_err() {
            return None;
        }
        rx.recv().flatten()
    }

    /// `true` when every shard is idle: no command queued anywhere and no
    /// handler mid-run. Once observed, the busy-time gauges in
    /// [`Self::metrics`] are fully up to date, which is what windowed
    /// measurements (difference two `shard_busy` snapshots) need — a
    /// snapshot taken while a worker is between "reply sent" and "time
    /// charged" would undercount. Callers that just issued synchronous
    /// commands reach idleness within microseconds; spin with
    /// `std::thread::yield_now()`.
    pub fn idle(&self) -> bool {
        self.pool.idle()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> WorkspaceMetrics {
        let edits = self.shared.edits_applied.load(Ordering::Relaxed);
        let elapsed = self.shared.started.elapsed();
        let shard_busy = self.pool.busy_time();
        let busiest = shard_busy.iter().copied().max().unwrap_or(Duration::ZERO);
        let queue_depth_per_shard: Vec<usize> = self
            .shared
            .depth
            .iter()
            .map(|d| d.load(Ordering::Relaxed) as usize)
            .collect();
        let pinned_versions: usize = self
            .shared
            .docs
            .lock()
            .expect("docs lock")
            .values()
            .map(|s| s.pinned.load(Ordering::Relaxed) as usize)
            .sum();
        WorkspaceMetrics {
            docs_open: self.shared.docs_open.load(Ordering::Relaxed) as usize,
            edits_applied: edits,
            reparses: self.shared.reparses.load(Ordering::Relaxed),
            edits_refused: self.shared.edits_refused.load(Ordering::Relaxed),
            coalesced_edits: self.shared.coalesced_edits.load(Ordering::Relaxed),
            steals: self.pool.steals(),
            migrations: self.shared.migrations.load(Ordering::Relaxed),
            docs_poisoned: self.shared.docs_poisoned.load(Ordering::Relaxed),
            elapsed,
            edits_per_sec: edits as f64 / elapsed.as_secs_f64().max(1e-9),
            queue_depth: queue_depth_per_shard.iter().sum(),
            queue_depth_per_shard,
            imbalance: busiest.as_secs_f64() / elapsed.as_secs_f64().max(1e-9),
            shard_busy,
            p50: self.shared.latency.percentile(0.50),
            p95: self.shared.latency.percentile(0.95),
            p99: self.shared.latency.percentile(0.99),
            queries: self.shared.queries.load(Ordering::Relaxed),
            query_p50: self.shared.query_latency.percentile(0.50),
            query_p95: self.shared.query_latency.percentile(0.95),
            query_p99: self.shared.query_latency.percentile(0.99),
            snapshot_reads: self.shared.snapshot_reads.load(Ordering::Relaxed),
            snapshot_lag: self.shared.snapshot_lag.load(Ordering::Relaxed),
            pinned_versions,
            grammar_updates: self.registry.grammar_updates(),
            grammar_swaps: self.shared.grammar_swaps.load(Ordering::Relaxed),
            table_epoch: self.shared.table_epoch.load(Ordering::Relaxed),
        }
    }

    /// Shuts down: refuses new commands, drains every accepted command,
    /// joins the workers, sweeps mailboxes so racing callers wake with
    /// [`WorkspaceError::ShuttingDown`], and returns the final metrics.
    pub fn shutdown(mut self) -> WorkspaceMetrics {
        self.shared.closing.store(true, Ordering::Release);
        self.pool.shutdown();
        let slots: Vec<Arc<DocSlot>> = self
            .shared
            .docs
            .lock()
            .expect("docs lock")
            .values()
            .cloned()
            .collect();
        for slot in slots {
            drop(slot.mailbox.close(&self.shared.depth));
        }
        self.metrics()
    }
}

/// Worker entry point: a document slot was popped from a run-queue.
/// Rebinds ownership on steal, drains the mailbox, walks it in FIFO order
/// coalescing consecutive applies, and reschedules the slot if commands
/// arrived while it was being processed.
fn process_slot(
    shared: &Shared,
    requeue: &Requeue<Arc<DocSlot>>,
    me: usize,
    slot: &Arc<DocSlot>,
    stolen: bool,
) {
    let (batch, migrated) = slot.mailbox.begin(me, &shared.depth);
    wg_trace!(
        "begin doc={} me={me} stolen={stolen} migrated={migrated} batch={}",
        slot.doc.0,
        batch.len()
    );
    // A slot pops from a foreign deque exactly when its binding is stale.
    debug_assert_eq!(migrated, stolen);
    if migrated {
        shared.migrations.fetch_add(1, Ordering::Relaxed);
    }
    let mut run: Vec<(Vec<EditReq>, OneShotSender<DocResult>)> = Vec::new();
    for cmd in batch {
        match cmd {
            Cmd::Apply { edits, reply } => run.push((edits, reply)),
            other => {
                exec_apply_run(shared, slot, std::mem::take(&mut run));
                exec_single(shared, slot, other);
            }
        }
    }
    exec_apply_run(shared, slot, run);
    let requeued = slot.mailbox.finish();
    wg_trace!("finish doc={} me={me} requeue={requeued:?}", slot.doc.0);
    if let Some(shard) = requeued {
        requeue.push(shard, Arc::clone(slot));
    }
}

/// Marks the document dead: the session is dropped and the flag lives in
/// the slot, so the poison follows the document across migrations.
fn poison(shared: &Shared, slot: &DocSlot) {
    // Retract the published snapshot first so new readers fall back to the
    // mailbox and observe Poisoned (readers already holding the Arc keep
    // their immutable version — that is snapshot isolation, not a leak).
    slot.publish_snapshot(None);
    slot.pinned.store(0, Ordering::Relaxed);
    let mut st = slot.state.lock().expect("doc state lock");
    if st.session.take().is_some() {
        shared.docs_open.fetch_sub(1, Ordering::Relaxed);
    }
    st.poisoned = true;
    shared.docs_poisoned.fetch_add(1, Ordering::Relaxed);
}

/// Executes one run of consecutive apply commands as shared reparse
/// cycles: all edits are fed into the session's pending buffer in FIFO
/// order; a reparse is flushed whenever the next edit falls outside the
/// current covering damage region's neighborhood, and once at the end.
fn exec_apply_run(
    shared: &Shared,
    slot: &DocSlot,
    applies: Vec<(Vec<EditReq>, OneShotSender<DocResult>)>,
) {
    if applies.is_empty() {
        return;
    }
    // Check the session out of the slot: on a panic it is simply dropped,
    // so no half-mutated tree is ever visible again.
    let (mut session, base_seq) = {
        let mut st = slot.state.lock().expect("doc state lock");
        if st.poisoned {
            drop(st);
            for (_, reply) in applies {
                reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
            }
            return;
        }
        match st.session.take() {
            Some(session) => (session, st.seq),
            None => {
                drop(st);
                for (_, reply) in applies {
                    reply.send(Err(WorkspaceError::UnknownDoc(slot.doc)));
                }
                return;
            }
        }
    };
    let t0 = Instant::now();
    // Cumulative fed-edit count at the end of each command, the final
    // remaining (refused) pending count, and the last cycle's report.
    let mut boundaries: Vec<usize> = Vec::with_capacity(applies.len());
    let mut fed = 0usize;
    let mut remaining = 0usize;
    let mut last_report = ReparseReport::default();
    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut group = 0usize; // edits fed since the last flush
        let mut cover: Option<Edit> = None; // covering damage, live coords
        let mut flush = |session: &mut Session, group: &mut usize| {
            let t_cycle = Instant::now();
            let out = session.reparse().expect("reparse is infallible");
            shared.latency.record(t_cycle.elapsed());
            shared.reparses.fetch_add(1, Ordering::Relaxed);
            shared
                .edits_applied
                .fetch_add(*group as u64, Ordering::Relaxed);
            if *group > 1 {
                shared
                    .coalesced_edits
                    .fetch_add((*group - 1) as u64, Ordering::Relaxed);
            }
            *group = 0;
            if out.report.grammar_swapped {
                // Organic adoption: the registry moved on while this
                // document kept editing, and this cycle picked it up.
                shared.grammar_swaps.fetch_add(1, Ordering::Relaxed);
            }
            remaining = out.remaining_edits;
            last_report = out.report;
        };
        for (edits, _) in &applies {
            for e in edits {
                let incoming = Edit {
                    start: e.start,
                    removed: e.removed,
                    inserted: e.insert.len(),
                };
                if let Some(cov) = cover {
                    if cov.gap_to(&incoming) > COALESCE_GAP {
                        flush(&mut session, &mut group);
                        cover = None;
                    }
                }
                session.edit(e.start, e.removed, &e.insert);
                fed += 1;
                group += 1;
                cover = Some(match cover {
                    None => incoming,
                    Some(cov) => cov.merge(incoming),
                });
            }
            boundaries.push(fed);
        }
        if group > 0 {
            flush(&mut session, &mut group);
        }
    }));
    match run {
        Ok(()) => {
            // Refused pending edits are always a *suffix* of the session's
            // pending list (carried-over refusals first, then this run's
            // feed), so the last `min(remaining, fed)` fed edits are the
            // refused ones; attribute them to commands by boundary.
            let fed_refused = remaining.min(fed);
            let cutoff = fed - fed_refused;
            if fed_refused > 0 {
                shared
                    .edits_refused
                    .fetch_add(fed_refused as u64, Ordering::Relaxed);
            }
            let latency = t0.elapsed();
            // Publish the new version for snapshot readers *before* any
            // apply reply goes out: a caller that waited for its apply
            // always reads its own writes from the snapshot path.
            let snap = session.publish();
            slot.snap_seq
                .store(base_seq + applies.len() as u64, Ordering::Relaxed);
            slot.publish_snapshot(Some(snap));
            // Sample the pin gauge after the swap so the outgoing
            // snapshot's pin (released by the swap unless a reader still
            // holds a clone) is not counted.
            slot.pinned
                .store(session.arena().live_pins() as u64, Ordering::Relaxed);
            {
                let mut st = slot.state.lock().expect("doc state lock");
                st.seq = base_seq + applies.len() as u64;
                st.session = Some(session);
            }
            let mut prev = 0usize;
            for (k, (edits, reply)) in applies.into_iter().enumerate() {
                let end = boundaries[k];
                let refused = end.saturating_sub(prev.max(cutoff));
                prev = end;
                reply.send(Ok(ApplyOutcome {
                    seq: base_seq + k as u64 + 1,
                    edits_applied: edits.len(),
                    edits_refused: refused,
                    incorporated: refused == 0,
                    last_report: last_report.clone(),
                    latency,
                }));
            }
        }
        Err(_) => {
            // The document dies; the worker (and every other document)
            // keeps serving. Every command coalesced into this run shared
            // the panicking cycle, so all of them answer Poisoned. The
            // session was checked out above, so drop it here and account
            // for it — `poison` only handles a slot-resident session.
            drop(session);
            shared.docs_open.fetch_sub(1, Ordering::Relaxed);
            poison(shared, slot);
            for (_, reply) in applies {
                reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
            }
        }
    }
}

/// Evaluates one [`SemQuery`] against a published snapshot (caller-thread
/// read path; mirrors the owner-shard evaluation in [`exec_single`]).
fn answer_from_snapshot(snap: &Snapshot, query: &SemQuery) -> SemAnswer {
    match query {
        SemQuery::ResolveAt(offset) => SemAnswer::Resolution(snap.info_at(*offset)),
        SemQuery::UsesOf(name) => SemAnswer::Uses(snap.uses_of(name)),
        SemQuery::AmbiguityAt(offset) => match snap.info_at(*offset) {
            Some(info) => SemAnswer::Ambiguity(info.ambiguous, info.resolved),
            None => SemAnswer::Ambiguity(false, false),
        },
    }
}

/// Executes one non-apply command against the document slot.
fn exec_single(shared: &Shared, slot: &DocSlot, cmd: Cmd) {
    match cmd {
        Cmd::Open {
            config,
            text,
            semantics,
            reply,
        } => {
            let opened = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let mut session = Session::new(&config, &text)?;
                if semantics {
                    let sem = SemState::new(config.grammar(), Strictness::RequireBinding);
                    session.attach_semantics(Box::new(sem));
                }
                Ok(session)
            }));
            match opened {
                Ok(Ok(mut session)) => {
                    let snap = session.publish();
                    slot.publish_snapshot(Some(snap));
                    slot.pinned
                        .store(session.arena().live_pins() as u64, Ordering::Relaxed);
                    slot.state.lock().expect("doc state lock").session = Some(session);
                    shared.docs_open.fetch_add(1, Ordering::Relaxed);
                    reply.send(Ok(()));
                }
                Ok(Err(e)) => {
                    shared.docs.lock().expect("docs lock").remove(&slot.doc);
                    reply.send(Err(WorkspaceError::Open(e)));
                }
                Err(_) => {
                    poison(shared, slot);
                    reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
                }
            }
        }
        Cmd::Apply { .. } => unreachable!("apply commands are grouped into runs"),
        Cmd::Query { query, reply } => {
            let st = slot.state.lock().expect("doc state lock");
            if st.poisoned {
                drop(st);
                reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
                return;
            }
            let Some(session) = st.session.as_ref() else {
                drop(st);
                reply.send(Err(WorkspaceError::UnknownDoc(slot.doc)));
                return;
            };
            if session.semantics().is_none() {
                drop(st);
                reply.send(Err(WorkspaceError::NoSemantics(slot.doc)));
                return;
            }
            let t0 = Instant::now();
            let answer = match query {
                SemQuery::ResolveAt(offset) => {
                    SemAnswer::Resolution(session.semantic_info_at(offset))
                }
                SemQuery::UsesOf(name) => SemAnswer::Uses(session.semantic_uses_of(&name)),
                SemQuery::AmbiguityAt(offset) => match session.semantic_info_at(offset) {
                    Some(info) => SemAnswer::Ambiguity(info.ambiguous, info.resolved),
                    None => SemAnswer::Ambiguity(false, false),
                },
            };
            shared.query_latency.record(t0.elapsed());
            shared.queries.fetch_add(1, Ordering::Relaxed);
            drop(st);
            reply.send(Ok(answer));
        }
        Cmd::Close { reply } => {
            slot.publish_snapshot(None);
            slot.pinned.store(0, Ordering::Relaxed);
            let existed = {
                let mut st = slot.state.lock().expect("doc state lock");
                st.poisoned = false; // closing clears the tombstone
                st.session.take().is_some()
            };
            if existed {
                shared.docs_open.fetch_sub(1, Ordering::Relaxed);
            }
            shared.docs.lock().expect("docs lock").remove(&slot.doc);
            reply.send(existed);
        }
        Cmd::UpdateGrammar { lang, epoch, reply } => {
            // Check the session out exactly like an apply run: the nudge
            // reparse mutates the tree (full-damage rebuild over the
            // retained token tape when it swaps), so a panic poisons only
            // this document.
            let mut session = {
                let mut st = slot.state.lock().expect("doc state lock");
                if st.poisoned {
                    drop(st);
                    reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
                    return;
                }
                match st.session.take() {
                    Some(session) => session,
                    None => {
                        drop(st);
                        reply.send(Err(WorkspaceError::UnknownDoc(slot.doc)));
                        return;
                    }
                }
            };
            let before = session.grammar_swaps();
            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let t_cycle = Instant::now();
                session.reparse().expect("reparse is infallible");
                shared.latency.record(t_cycle.elapsed());
            }));
            match run {
                Ok(()) => {
                    shared.reparses.fetch_add(1, Ordering::Relaxed);
                    let swapped = session.grammar_swaps() > before;
                    if swapped {
                        shared.grammar_swaps.fetch_add(1, Ordering::Relaxed);
                        // Republish so snapshot readers see the new
                        // grammar's tree and semantic view.
                        let snap = session.publish();
                        slot.publish_snapshot(Some(snap));
                        slot.pinned
                            .store(session.arena().live_pins() as u64, Ordering::Relaxed);
                    }
                    // "Adopted" is judged against the broadcast's slot and
                    // epoch, not against whether *this* reparse swapped: an
                    // interleaved apply run may have adopted the new table
                    // organically a moment earlier, and that document is
                    // just as current.
                    let cfg = session.config();
                    let adopted = cfg.lang_slot().is_some_and(|s| Arc::ptr_eq(s, &lang))
                        && cfg.table_epoch() >= epoch;
                    slot.state.lock().expect("doc state lock").session = Some(session);
                    reply.send(Ok(adopted));
                }
                Err(_) => {
                    drop(session);
                    shared.docs_open.fetch_sub(1, Ordering::Relaxed);
                    poison(shared, slot);
                    reply.send(Err(WorkspaceError::Poisoned(slot.doc)));
                }
            }
        }
        Cmd::Text { reply } => {
            let st = slot.state.lock().expect("doc state lock");
            let text = st.session.as_ref().map(|s| s.text());
            drop(st);
            reply.send(text);
        }
        Cmd::Dump { reply } => {
            let st = slot.state.lock().expect("doc state lock");
            let dump = st.session.as_ref().map(|s| s.dump());
            drop(st);
            reply.send(dump);
        }
    }
}
