//! The **abstract parse dag** — the paper's intermediate representation
//! (Section 2).
//!
//! An abstract parse dag is a parse tree extended with *symbol (choice)
//! nodes*: where the syntax is ambiguous, a symbol node represents the
//! phylum (left-hand side) alone and its children are the alternative
//! interpretations of their common yield. Deterministic regions remain
//! ordinary trees, so the representation costs almost nothing on real
//! programs (Table 1 of the paper: ≤0.5% extra space on SPEC95 C code).
//!
//! Nodes live in a [`DagArena`] and are addressed by [`NodeId`]. Each node
//! records the parse state in which it was built ([`ParseState`]) — the
//! state-matching information that drives incremental reuse — with the
//! distinguished [`ParseState::MULTI`] marking nodes built while several
//! parsers were active (the paper's encoding of dynamic lookahead,
//! Section 3.3).
//!
//! Associative sequences declared in the grammar are represented as
//! **balanced binary trees** ([`NodeKind::Sequence`] / [`NodeKind::SeqRun`])
//! so incremental updates touch O(lg N) structure (Section 3.4); see
//! [`rebalance_sequences`].
//!
//! The crate also provides the damage-marking pass the incremental parser
//! runs before reparsing (`process_modifications_to_parse_dag` in the
//! paper's Appendix A: a node is *changed* when its yield or the terminal
//! following its yield was edited), the ε-subtree unsharing post-pass of
//! Section 3.5, and the space statistics used by the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod fx;
mod input;
mod node;
mod sequence;
mod share;
mod snapshot;
mod stats;
mod traverse;

pub use arena::DagArena;
pub use fx::{fx_hash, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use input::InputStream;
pub use node::{Node, NodeId, NodeKind, ParseState};
pub use sequence::{rebalance_sequences, rebalance_sequences_full, sequence_depth, SequencePolicy};
pub use share::unshare_epsilon;
pub use snapshot::{DagRead, DagSnapshot};
pub use stats::DagStats;
pub use traverse::{descendants, dump, structurally_equal, yield_string, Descendants};
