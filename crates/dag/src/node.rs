//! Node identity, parse-state annotation, and node kinds.

use std::fmt;
use wg_grammar::{NonTerminal, ProdId, Terminal};

/// Handle to a node in a [`crate::DagArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Sentinel for "no node" (e.g. the root's parent).
    pub const NONE: NodeId = NodeId(u32::MAX);

    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the [`NodeId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == NodeId::NONE
    }
}

/// The parse state recorded in a dag node.
///
/// Ordinary values hold the LR automaton state the (single, deterministic)
/// parser was in when the node was created — the left-context check of
/// state-matching incremental parsing. Two sentinels:
///
/// * [`ParseState::MULTI`] — the node was built while more than one parser
///   was active (or via a conflicted table entry). All non-deterministic
///   states form one equivalence class (Section 3.3); the state-match test
///   always fails on them, forcing decomposition.
/// * [`ParseState::NONE`] — no state recorded (fresh tokens, symbol nodes,
///   sentinels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParseState(pub u32);

impl ParseState {
    /// The equivalence class of all non-deterministic states.
    pub const MULTI: ParseState = ParseState(u32::MAX);
    /// No state recorded.
    pub const NONE: ParseState = ParseState(u32::MAX - 1);

    /// Whether this is an ordinary (deterministic) state.
    #[inline]
    pub fn is_deterministic(self) -> bool {
        self != ParseState::MULTI && self != ParseState::NONE
    }
}

impl fmt::Display for ParseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ParseState::MULTI {
            write!(f, "multi")
        } else if *self == ParseState::NONE {
            write!(f, "-")
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// What a dag node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A token. `term` is the grammar terminal; `lexeme` its text.
    Terminal {
        /// Grammar terminal this token maps to.
        term: Terminal,
        /// The token's text.
        lexeme: String,
    },
    /// An instance of a production; kids are the right-hand-side instances.
    /// Represents both the production and its left-hand-side symbol (the
    /// common, deterministic case of Figure 2c).
    Production {
        /// The production instantiated.
        prod: ProdId,
    },
    /// A *choice point* (Figure 2f): represents only the left-hand-side
    /// symbol; kids are the alternative interpretations of a common yield.
    Symbol {
        /// The ambiguous phylum.
        symbol: NonTerminal,
    },
    /// A complete (or prefix) instance of a declared associative sequence,
    /// physically represented as a balanced binary tree (Section 3.4).
    /// Kids are elements, separators, nested prefix [`NodeKind::Sequence`]s,
    /// and [`NodeKind::SeqRun`] chunks, in yield order.
    Sequence {
        /// The sequence nonterminal.
        symbol: NonTerminal,
    },
    /// An internal run of a sequence: a chunk of consecutive
    /// (separator, element) steps. Shifting a run leaves the parse state
    /// unchanged, which is what makes O(lg N) reuse of long sequences
    /// possible.
    SeqRun {
        /// The sequence nonterminal this run belongs to.
        symbol: NonTerminal,
    },
    /// The super-root; kids are `[bos, body, eos]`.
    Root,
    /// Beginning-of-stream sentinel.
    Bos,
    /// End-of-stream sentinel.
    Eos,
}

impl NodeKind {
    /// Whether this node is a token (including the sentinels).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            NodeKind::Terminal { .. } | NodeKind::Bos | NodeKind::Eos
        )
    }

    /// The nonterminal this node stands for, if any.
    pub fn nonterminal_of(&self, prod_lhs: impl Fn(ProdId) -> NonTerminal) -> Option<NonTerminal> {
        match self {
            NodeKind::Production { prod } => Some(prod_lhs(*prod)),
            NodeKind::Symbol { symbol }
            | NodeKind::Sequence { symbol }
            | NodeKind::SeqRun { symbol } => Some(*symbol),
            _ => None,
        }
    }
}

/// How many kid ids fit directly inside a node before the arena's shared
/// kid slab takes over.
pub(crate) const INLINE_KIDS: usize = 3;

/// Where a node's children live.
///
/// Small arities (the overwhelming majority: terminals have none, most
/// productions have ≤ 3 symbols) are stored inline in the node itself; wider
/// nodes hold an `(offset, len, capacity)` window into the arena's shared
/// kid slab (`DagArena::slab`). Either way a node costs a fixed number of
/// words and *no per-node heap allocation* — the property the zero-alloc
/// steady state is built on. Resolve through [`crate::DagArena::kids`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kids {
    /// Up to [`INLINE_KIDS`] ids stored directly in the node.
    Inline {
        /// The ids; slots at and beyond `len` are meaningless.
        buf: [NodeId; INLINE_KIDS],
        /// How many of `buf`'s slots are in use.
        len: u8,
    },
    /// A region of the arena's shared kid slab.
    Slab {
        /// Start of the region in the slab.
        off: u32,
        /// Kids currently stored.
        len: u32,
        /// Region capacity (a power of two ≥ 4); the region is recycled
        /// through a per-capacity-class free list when the node dies or
        /// outgrows it.
        cap: u32,
    },
}

impl Kids {
    /// An empty inline kid list.
    pub(crate) const EMPTY: Kids = Kids::Inline {
        buf: [NodeId::NONE; INLINE_KIDS],
        len: 0,
    };

    /// Number of kids.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            Kids::Inline { len, .. } => *len as usize,
            Kids::Slab { len, .. } => *len as usize,
        }
    }
}

/// A dag node. Accessed through [`crate::DagArena`] methods; exposed for
/// read-only inspection. Children live inline or in the arena's shared kid
/// slab, so resolving them needs the arena: use [`crate::DagArena::kids`].
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) state: ParseState,
    pub(crate) parent: NodeId,
    pub(crate) kids: Kids,
    /// Number of terminals in the yield.
    pub(crate) width: u32,
    /// Leading terminal of the yield (meaningless when `width == 0`);
    /// cached so the parsers' `redLa` peek is O(1) on unchanged subtrees.
    pub(crate) leftmost: Terminal,
    /// Parse generation in which the node was created.
    pub(crate) epoch: u32,
    pub(crate) changed: bool,
    /// Whether this slot sits on the arena's free list (dead, recyclable).
    pub(crate) free: bool,
    /// Whether this slot is dead but *retired* rather than recyclable: a
    /// live snapshot still pins a version that saw the node, so its
    /// storage is kept intact on the deferred free list.
    pub(crate) deferred: bool,
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Recorded parse state.
    pub fn state(&self) -> ParseState {
        self.state
    }

    /// Number of children (for symbol nodes: alternatives). The child ids
    /// themselves live partly in the arena's kid slab; resolve them with
    /// [`crate::DagArena::kids`].
    pub fn kid_count(&self) -> usize {
        self.kids.len()
    }

    /// Parent in the current tree ([`NodeId::NONE`] if detached/root).
    pub fn parent(&self) -> NodeId {
        self.parent
    }

    /// Number of terminals in the yield.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Cached leading terminal of the yield (only meaningful when
    /// `width() > 0`).
    pub fn leftmost(&self) -> Terminal {
        self.leftmost
    }

    /// Whether the damage-marking pass flagged this node.
    pub fn has_changes(&self) -> bool {
        self.changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_state_classification() {
        assert!(ParseState(0).is_deterministic());
        assert!(ParseState(441).is_deterministic());
        assert!(!ParseState::MULTI.is_deterministic());
        assert!(!ParseState::NONE.is_deterministic());
        assert_eq!(format!("{}", ParseState(3)), "s3");
        assert_eq!(format!("{}", ParseState::MULTI), "multi");
        assert_eq!(format!("{}", ParseState::NONE), "-");
    }

    #[test]
    fn node_id_sentinel() {
        assert!(NodeId::NONE.is_none());
        assert!(!NodeId(0).is_none());
    }

    #[test]
    fn kind_predicates() {
        let t = NodeKind::Terminal {
            term: Terminal::EOF,
            lexeme: String::new(),
        };
        assert!(t.is_terminal());
        assert!(NodeKind::Bos.is_terminal());
        assert!(NodeKind::Eos.is_terminal());
        assert!(!NodeKind::Root.is_terminal());
        let s = NodeKind::Symbol {
            symbol: NonTerminal::from_index(4),
        };
        assert_eq!(
            s.nonterminal_of(|_| unreachable!()),
            Some(NonTerminal::from_index(4))
        );
        assert_eq!(t.nonterminal_of(|_| unreachable!()), None);
    }
}
