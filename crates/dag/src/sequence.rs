//! Balanced representation of associative sequences (Section 3.4).
//!
//! Grammars express repetition left-recursively, which would make parse
//! trees behave like linked lists and degrade every incremental algorithm to
//! linear time. The paper's remedy: sequences *declared associative* in the
//! grammar (regular right parts) are physically represented as balanced
//! binary trees, while the grammar still defines the logical structure.
//!
//! The parsers accumulate flat [`crate::NodeKind::Sequence`] containers while
//! reducing; after each parse [`rebalance_sequences`] restores the balanced
//! shape:
//!
//! ```text
//! Sequence[ first-element, SeqRun( balanced binary tree of steps ) ]
//! ```
//!
//! A *step* is `[element]` (unseparated) or `[separator, element]`. A run of
//! steps is shiftable by the incremental parser without changing parse
//! state — consuming one step from the post-prefix state `q` returns to `q`
//! — so `SeqRun` chunks state-match like any other subtree and an edit in
//! the middle of an N-element sequence decomposes only O(lg N) structure.
//!
//! The pass is **epoch-aware** so its cost is proportional to the freshly
//! built structure, not the whole tree:
//!
//! * sequences whose containers were all built this parse (the batch case)
//!   are fully rebuilt into the canonical balanced shape;
//! * sequences that merely gained a few pieces this parse (the incremental
//!   case) get their top layer *compacted* — the new pieces and the reused
//!   runs are regrouped into a binary tree without flattening the reused
//!   interiors — an O(fanout) operation. Repeated edits can therefore let
//!   the depth creep by O(lg fanout) per edit; this bounded-creep
//!   amortization is recorded in DESIGN.md.

use crate::arena::DagArena;
use crate::node::{NodeId, NodeKind, ParseState};
use wg_grammar::NonTerminal;

/// Containers wider than this get their top layer compacted.
const MAX_FANOUT: usize = 8;

/// What the rebalancer must know about each declared sequence; implemented
/// by the parser layer over its parse table.
pub trait SequencePolicy {
    /// Whether the sequence uses a separator between elements.
    fn is_separated(&self, sym: NonTerminal) -> bool;
    /// The state a run of `sym` steps is consumed in: `GOTO(seq_state, sym)`.
    /// `None` disables rebalancing for this instance.
    fn run_state(&self, seq_state: ParseState, sym: NonTerminal) -> Option<ParseState>;
    /// If `prod` is a lowered sequence production, its sequence nonterminal.
    /// Lets the rebalancer canonicalize the `Production` fallback chains the
    /// parsers build while the `multipleStates` flag is raised (sequences
    /// whose *elements* are ambiguous — allowed by Section 3.4).
    fn seq_prod_symbol(&self, _prod: wg_grammar::ProdId) -> Option<NonTerminal> {
        None
    }
}

impl<F1, F2> SequencePolicy for (F1, F2)
where
    F1: Fn(NonTerminal) -> bool,
    F2: Fn(ParseState, NonTerminal) -> Option<ParseState>,
{
    fn is_separated(&self, sym: NonTerminal) -> bool {
        (self.0)(sym)
    }
    fn run_state(&self, seq_state: ParseState, sym: NonTerminal) -> Option<ParseState> {
        (self.1)(seq_state, sym)
    }
}

/// Depth of the sequence-container structure under `node` (1 for a flat
/// sequence). Elements are opaque.
pub fn sequence_depth(arena: &DagArena, node: NodeId) -> usize {
    let sym = match arena.kind(node) {
        NodeKind::Sequence { symbol } | NodeKind::SeqRun { symbol } => *symbol,
        _ => return 0,
    };
    1 + arena
        .kids(node)
        .iter()
        .map(|&k| match arena.kind(k) {
            NodeKind::Sequence { symbol } | NodeKind::SeqRun { symbol } if *symbol == sym => {
                sequence_depth(arena, k)
            }
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Fully re-canonicalizes every sequence under `root`, regardless of epoch
/// (the periodic backstop for the bounded depth creep of incremental
/// compaction — O(tree), so callers amortize it over many reparses).
pub fn rebalance_sequences_full<P: SequencePolicy>(
    arena: &mut DagArena,
    root: NodeId,
    policy: &P,
) -> usize {
    let mut rebuilt = 0;
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Some(symbol) = sequence_head(arena, policy, id) {
            if canonical_rebuild(arena, id, symbol, policy) {
                rebuilt += 1;
            }
        }
        stack.extend_from_slice(arena.kids(id));
    }
    rebuilt
}

/// Canonically rebuilds one sequence from the element level if its shape is
/// off (deep or wide). Returns whether it changed.
fn canonical_rebuild<P: SequencePolicy>(
    arena: &mut DagArena,
    seq: NodeId,
    sym: NonTerminal,
    policy: &P,
) -> bool {
    let is_fallback = matches!(arena.kind(seq), NodeKind::Production { .. });
    let state = if arena.state(seq).is_deterministic() {
        arena.state(seq)
    } else {
        match flatten(arena, policy, seq, sym).1 {
            Some(st) => st,
            None => return false,
        }
    };
    let Some(run_state) = policy.run_state(state, sym) else {
        return false;
    };
    let width = arena.width(seq).max(1) as usize;
    let bound = 2 * (usize::BITS - width.leading_zeros()) as usize + 4;
    if !is_fallback && arena.kids(seq).len() <= MAX_FANOUT && sequence_depth(arena, seq) <= bound {
        return false;
    }
    let (pieces, _) = flatten(arena, policy, seq, sym);
    if pieces.is_empty() {
        return false;
    }
    let step_len = if policy.is_separated(sym) { 2 } else { 1 };
    let rest = &pieces[1..];
    if rest.len() % step_len != 0 {
        return false; // malformed mix: leave it
    }
    let steps: Vec<&[NodeId]> = rest.chunks(step_len).collect();
    let mut kids = vec![pieces[0]];
    if !steps.is_empty() {
        kids.push(build_run(arena, sym, run_state, &steps));
    }
    if is_fallback {
        arena.convert_to_sequence(seq, sym, state);
    }
    arena.set_kids(seq, &kids);
    true
}

/// Restores balanced sequence shape for everything built in the current
/// epoch under `root`. Returns the number of sequences restructured.
pub fn rebalance_sequences<P: SequencePolicy>(
    arena: &mut DagArena,
    root: NodeId,
    policy: &P,
) -> usize {
    let mut rebuilt = 0;
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        // Nodes from earlier epochs head unchanged subtrees: they were left
        // canonical by the parse that built them, and old nodes never point
        // at new ones — except the super-root, which is reused across
        // reparses and has its body swapped in place.
        if !arena.is_current_epoch(id) && !matches!(arena.kind(id), NodeKind::Root) {
            continue;
        }
        if let Some(symbol) = sequence_head(arena, policy, id) {
            if rebalance_one(arena, id, symbol, policy) {
                rebuilt += 1;
            }
        }
        stack.extend_from_slice(arena.kids(id));
    }
    rebuilt
}

/// The sequence nonterminal a node heads, if it is sequence structure: a
/// Sequence node, or a fallback Production over a lowered sequence
/// production.
fn sequence_head<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    id: NodeId,
) -> Option<NonTerminal> {
    match arena.kind(id) {
        NodeKind::Sequence { symbol } => Some(*symbol),
        NodeKind::Production { prod } => policy.seq_prod_symbol(*prod),
        _ => None,
    }
}

/// Whether `k` is container structure of the sequence `sym`: a same-symbol
/// Sequence/SeqRun, or a `Production` fallback over a lowered sequence
/// production (built while the parse was non-deterministic).
fn is_container<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    k: NodeId,
    sym: NonTerminal,
) -> bool {
    match arena.kind(k) {
        NodeKind::Sequence { symbol } | NodeKind::SeqRun { symbol } => *symbol == sym,
        NodeKind::Production { prod } => policy.seq_prod_symbol(*prod) == Some(sym),
        _ => false,
    }
}

/// Collects the leaf pieces (elements and separators, in yield order) of a
/// sequence, looking through containers, and reports the state of the
/// first deterministic container encountered (the sequence's true
/// preceding state, needed when the top of a fallback chain is multistate).
fn flatten<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    node: NodeId,
    sym: NonTerminal,
) -> (Vec<NodeId>, Option<ParseState>) {
    let mut out = Vec::new();
    let mut first_state = None;
    flatten_rec(arena, policy, node, sym, &mut out, &mut first_state);
    (out, first_state)
}

fn flatten_rec<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    node: NodeId,
    sym: NonTerminal,
    out: &mut Vec<NodeId>,
    first_state: &mut Option<ParseState>,
) {
    if first_state.is_none() && arena.state(node).is_deterministic() {
        *first_state = Some(arena.state(node));
    }
    for &k in arena.kids(node) {
        if is_container(arena, policy, k, sym) {
            flatten_rec(arena, policy, k, sym, out, first_state);
        } else {
            out.push(k);
        }
    }
}

/// Whether every container under `seq` was built this epoch (early-exits on
/// the first reused container).
fn containers_all_current<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    seq: NodeId,
    sym: NonTerminal,
) -> bool {
    for &k in arena.kids(seq) {
        if is_container(arena, policy, k, sym)
            && (!arena.is_current_epoch(k) || !containers_all_current(arena, policy, k, sym))
        {
            return false;
        }
    }
    true
}

/// Rebalances one freshly built sequence node. Returns whether it changed.
fn rebalance_one<P: SequencePolicy>(
    arena: &mut DagArena,
    seq: NodeId,
    sym: NonTerminal,
    policy: &P,
) -> bool {
    let is_fallback = matches!(arena.kind(seq), NodeKind::Production { .. });
    // A fallback chain head carries the multistate sentinel; the sequence's
    // true preceding state lives on its leftmost deterministic container.
    let state = if arena.state(seq).is_deterministic() {
        arena.state(seq)
    } else {
        let (_, first) = flatten(arena, policy, seq, sym);
        match first {
            Some(st) => st,
            None => return false,
        }
    };
    let Some(run_state) = policy.run_state(state, sym) else {
        return false;
    };
    let fanout = arena.kids(seq).len();
    if !is_fallback && fanout <= MAX_FANOUT {
        return false;
    }
    let separated = policy.is_separated(sym);

    if containers_all_current(arena, policy, seq, sym) || is_fallback {
        // Whole sequence freshly built (batch case), or a fallback chain
        // (which must be canonicalized so edits near one ambiguous element
        // do not decompose the statement list around it): rebuild from the
        // element level.
        let (pieces, _) = flatten(arena, policy, seq, sym);
        if pieces.is_empty() {
            return false;
        }
        let step_len = if separated { 2 } else { 1 };
        let rest = &pieces[1..];
        if rest.len() % step_len != 0 {
            return false; // malformed mix: leave as is
        }
        let steps: Vec<&[NodeId]> = rest.chunks(step_len).collect();
        let mut kids = vec![pieces[0]];
        if !steps.is_empty() {
            kids.push(build_run(arena, sym, run_state, &steps));
        }
        if is_fallback {
            arena.convert_to_sequence(seq, sym, state);
        }
        arena.set_kids(seq, &kids);
    } else {
        // Incremental case: group the top-layer pieces without flattening
        // reused runs. Cost is O(fanout).
        let kids: Vec<NodeId> = arena.kids(seq).to_vec();
        let units = group_units(arena, policy, &kids[1..], sym, separated);
        let tree = build_unit_tree(arena, sym, run_state, &units);
        arena.set_kids(seq, &[kids[0], tree]);
    }
    true
}

/// Groups top-layer kids into shiftable units: a same-symbol container is a
/// unit by itself; otherwise one step's pieces form a unit.
fn group_units<P: SequencePolicy>(
    arena: &DagArena,
    policy: &P,
    kids: &[NodeId],
    sym: NonTerminal,
    separated: bool,
) -> Vec<Vec<NodeId>> {
    let mut units = Vec::new();
    let mut i = 0;
    while i < kids.len() {
        let k = kids[i];
        let is_container = is_container(arena, policy, k, sym);
        if is_container || !separated {
            units.push(vec![k]);
            i += 1;
        } else {
            // (separator, element) pair.
            let end = (i + 2).min(kids.len());
            units.push(kids[i..end].to_vec());
            i = end;
        }
    }
    units
}

/// Builds a balanced binary run tree over opaque units.
fn build_unit_tree(
    arena: &mut DagArena,
    sym: NonTerminal,
    run_state: ParseState,
    units: &[Vec<NodeId>],
) -> NodeId {
    if units.len() == 1 {
        let u = &units[0];
        if u.len() == 1 {
            return u[0];
        }
        return arena.seq_run(sym, run_state, u);
    }
    let mid = units.len() / 2;
    let left = build_unit_tree(arena, sym, run_state, &units[..mid]);
    let right = build_unit_tree(arena, sym, run_state, &units[mid..]);
    arena.seq_run(sym, run_state, &[left, right])
}

/// Builds a balanced binary run tree over element-level steps.
fn build_run(
    arena: &mut DagArena,
    sym: NonTerminal,
    run_state: ParseState,
    steps: &[&[NodeId]],
) -> NodeId {
    if steps.len() == 1 {
        let step = steps[0];
        if step.len() == 1 {
            // A single unseparated element is its own shiftable unit; no
            // wrapper needed (keeps the space overhead near zero).
            return step[0];
        }
        return arena.seq_run(sym, run_state, step);
    }
    let mid = steps.len() / 2;
    let left = build_run(arena, sym, run_state, &steps[..mid]);
    let right = build_run(arena, sym, run_state, &steps[mid..]);
    arena.seq_run(sym, run_state, &[left, right])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_grammar::Terminal;

    struct TestPolicy {
        separated: bool,
    }

    impl SequencePolicy for TestPolicy {
        fn is_separated(&self, _s: NonTerminal) -> bool {
            self.separated
        }
        fn run_state(&self, _st: ParseState, _s: NonTerminal) -> Option<ParseState> {
            Some(ParseState(99))
        }
    }

    /// Builds a flat sequence (what batch parsing's in-place accumulation
    /// produces): Seq[e0 e1 ... e_{n-1}].
    fn flat_seq(arena: &mut DagArena, sym: NonTerminal, n: usize) -> NodeId {
        let kids: Vec<NodeId> = (0..n)
            .map(|i| arena.terminal(Terminal::from_index(1), &format!("e{i}")))
            .collect();
        arena.sequence(sym, ParseState(0), &kids)
    }

    #[test]
    fn depth_of_flat_and_nested() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let flat = flat_seq(&mut a, sym, 4);
        assert_eq!(sequence_depth(&a, flat), 1);
        let outer = a.sequence(sym, ParseState(0), &[flat]);
        assert_eq!(sequence_depth(&a, outer), 2);
        let term = a.terminal(Terminal::from_index(1), "t");
        assert_eq!(sequence_depth(&a, term), 0);
    }

    #[test]
    fn flat_batch_sequence_becomes_logarithmic() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat_seq(&mut a, sym, 128);
        let root = a.root(seq);
        let before = crate::traverse::yield_string(&a, root);
        let n = rebalance_sequences(&mut a, root, &TestPolicy { separated: false });
        assert_eq!(n, 1);
        assert_eq!(crate::traverse::yield_string(&a, root), before);
        let d = sequence_depth(&a, seq);
        assert!((2..=10).contains(&d), "depth {d} not logarithmic");
        assert!(a.kids(seq).len() <= 2, "canonical top shape");
    }

    #[test]
    fn small_sequences_left_alone() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat_seq(&mut a, sym, MAX_FANOUT);
        let root = a.root(seq);
        assert_eq!(
            rebalance_sequences(&mut a, root, &TestPolicy { separated: false }),
            0
        );
    }

    #[test]
    fn reused_runs_are_not_flattened() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Simulate a reused balanced run from a previous epoch.
        let old_elems: Vec<NodeId> = (0..64)
            .map(|i| a.terminal(Terminal::from_index(1), &format!("o{i}")))
            .collect();
        let old_run = a.seq_run(sym, ParseState(99), &old_elems);
        a.begin_epoch();
        // This epoch: a fresh sequence that reuses the run plus new items.
        let e0 = a.terminal(Terminal::from_index(1), "n0");
        let mut kids = vec![e0, old_run];
        for i in 0..12 {
            kids.push(a.terminal(Terminal::from_index(1), &format!("n{i}")));
        }
        let seq = a.sequence(sym, ParseState(0), &kids);
        let root = a.root(seq);
        let before = crate::traverse::yield_string(&a, root);
        assert_eq!(
            rebalance_sequences(&mut a, root, &TestPolicy { separated: false }),
            1
        );
        assert_eq!(crate::traverse::yield_string(&a, root), before);
        assert_eq!(a.kids(seq).len(), 2, "top compacted");
        // The reused run must survive intact somewhere under the new top.
        fn contains(a: &DagArena, n: NodeId, target: NodeId) -> bool {
            n == target || a.kids(n).iter().any(|&k| contains(a, k, target))
        }
        assert!(contains(&a, seq, old_run));
        assert_eq!(a.kids(old_run).len(), 64, "interior untouched");
    }

    #[test]
    fn separated_compaction_pairs_steps() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Flat separated sequence e0 (, e)*15 : kids = e0, (",", e)*15.
        let mut kids = vec![a.terminal(Terminal::from_index(1), "e0")];
        for i in 1..16 {
            kids.push(a.terminal(Terminal::from_index(2), ","));
            kids.push(a.terminal(Terminal::from_index(1), &format!("e{i}")));
        }
        let seq = a.sequence(sym, ParseState(0), &kids);
        let root = a.root(seq);
        let before = crate::traverse::yield_string(&a, root);
        rebalance_sequences(&mut a, root, &TestPolicy { separated: true });
        assert_eq!(crate::traverse::yield_string(&a, root), before);
        // Every leaf run pairs separator with element.
        fn check_runs(a: &DagArena, n: NodeId) {
            if let NodeKind::SeqRun { .. } = a.kind(n) {
                let kids = a.kids(n);
                let leaf = kids
                    .iter()
                    .all(|&k| !matches!(a.kind(k), NodeKind::SeqRun { .. }));
                if leaf {
                    assert_eq!(kids.len(), 2, "leaf run must be (sep, elem)");
                }
            }
            for &k in a.kids(n) {
                check_runs(a, k);
            }
        }
        check_runs(&a, seq);
        assert!(sequence_depth(&a, seq) <= 7);
    }

    #[test]
    fn old_epoch_sequences_are_skipped() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat_seq(&mut a, sym, 100);
        let root = a.root(seq);
        a.begin_epoch();
        // Nothing from the current epoch: the walk skips the whole tree.
        assert_eq!(
            rebalance_sequences(&mut a, root, &TestPolicy { separated: false }),
            0
        );
        assert_eq!(a.kids(seq).len(), 100, "untouched");
    }

    #[test]
    fn policy_can_disable_rebalancing() {
        struct Never;
        impl SequencePolicy for Never {
            fn is_separated(&self, _s: NonTerminal) -> bool {
                false
            }
            fn run_state(&self, _st: ParseState, _s: NonTerminal) -> Option<ParseState> {
                None
            }
        }
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat_seq(&mut a, sym, 64);
        let root = a.root(seq);
        assert_eq!(rebalance_sequences(&mut a, root, &Never), 0);
        assert_eq!(a.kids(seq).len(), 64);
    }

    #[test]
    fn empty_and_singleton_sequences_ok() {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let empty = a.sequence(sym, ParseState(0), &[]);
        let single = flat_seq(&mut a, sym, 1);
        let p = a.production(
            wg_grammar::ProdId::from_index(1),
            ParseState(0),
            &[empty, single],
        );
        let root = a.root(p);
        assert_eq!(
            rebalance_sequences(&mut a, root, &TestPolicy { separated: false }),
            0
        );
    }
}
