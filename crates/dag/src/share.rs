//! Sharing hygiene: the ε-subtree unsharing post-pass (Section 3.5).
//!
//! GLR parsing of grammars with ε-productions can *over-share*: one
//! null-yield subtree instance ends up referenced from several places in an
//! otherwise unambiguous tree, which the paper considers a flaw — semantic
//! attributes could no longer be assigned uniquely to each instance. The fix
//! is a post-pass that duplicates any null-yield subtree reached more than
//! once.

use crate::arena::DagArena;
use crate::node::{NodeId, NodeKind};
use std::collections::HashSet;

/// Duplicates every null-yield subtree referenced more than once in the
/// tree under `root` (choice-node alternatives are each visited). Returns
/// the number of subtrees duplicated.
///
/// The walk is epoch-aware: subtrees headed by nodes from earlier epochs
/// were left duplicate-free by the parse that built them and are reused
/// whole, so only freshly built structure is visited — the pass costs
/// O(changed), not O(tree).
pub fn unshare_epsilon(arena: &mut DagArena, root: NodeId) -> usize {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut processed: HashSet<NodeId> = HashSet::new();
    let mut duplicated = 0;
    unshare_rec(arena, root, &mut seen, &mut processed, &mut duplicated);
    duplicated
}

fn unshare_rec(
    arena: &mut DagArena,
    node: NodeId,
    seen: &mut HashSet<NodeId>,
    processed: &mut HashSet<NodeId>,
    duplicated: &mut usize,
) {
    // Each node is processed once; without this, the walk would traverse
    // every *path* of the dag, which is exponential under ambiguity
    // packing. (Legitimately shared width>0 subtrees are left shared.)
    if !processed.insert(node) {
        return;
    }
    // Nodes reused from earlier epochs head unchanged, already-unshared
    // subtrees; each is delivered at most once by the input stream, so no
    // new sharing can involve their interiors.
    if !arena.is_current_epoch(node) && !matches!(arena.kind(node), NodeKind::Root) {
        return;
    }
    let kids: Vec<NodeId> = arena.kids(node).to_vec();
    let mut new_kids = kids.clone();
    let mut changed = false;
    for (i, &k) in kids.iter().enumerate() {
        let is_null_subtree = arena.width(k) == 0
            && !arena.kind(k).is_terminal()
            && !matches!(arena.kind(k), NodeKind::Root);
        if is_null_subtree && !seen.insert(k) {
            // Second (or later) reference: deep-copy the subtree.
            let copy = deep_clone(arena, k);
            new_kids[i] = copy;
            changed = true;
            *duplicated += 1;
            // The fresh copy's interior is all new nodes; no need to recurse.
            continue;
        }
        unshare_rec(arena, k, seen, processed, duplicated);
    }
    if changed {
        arena.set_kids(node, &new_kids);
    }
}

/// Deep-copies a (null-yield) subtree.
fn deep_clone(arena: &mut DagArena, node: NodeId) -> NodeId {
    let kids: Vec<NodeId> = arena.kids(node).to_vec();
    let new_kids: Vec<NodeId> = kids.iter().map(|&k| deep_clone(arena, k)).collect();
    let state = arena.state(node);
    match arena.kind(node).clone() {
        NodeKind::Production { prod } => arena.production(prod, state, &new_kids),
        NodeKind::Sequence { symbol } => arena.sequence(symbol, state, &new_kids),
        NodeKind::SeqRun { symbol } => arena.seq_run(symbol, state, &new_kids),
        NodeKind::Symbol { symbol } => {
            let mut it = new_kids.into_iter();
            let first = it.next().expect("symbol node has at least one alternative");
            let sym = arena.symbol(symbol, first);
            for alt in it {
                arena.add_choice(sym, alt);
            }
            sym
        }
        NodeKind::Terminal { term, lexeme } => arena.terminal(term, &lexeme),
        NodeKind::Root | NodeKind::Bos | NodeKind::Eos => {
            unreachable!("sentinels are never null-yield subtrees")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ParseState;
    use wg_grammar::{ProdId, Terminal};

    #[test]
    fn shared_epsilon_subtree_is_duplicated() {
        let mut a = DagArena::new();
        // eps = P2() with no kids (null yield), shared by two parents.
        let eps = a.production(ProdId::from_index(2), ParseState(1), &[]);
        let x = a.terminal(Terminal::from_index(1), "x");
        let y = a.terminal(Terminal::from_index(1), "y");
        let p1 = a.production(ProdId::from_index(1), ParseState(0), &[eps, x]);
        let p2 = a.production(ProdId::from_index(1), ParseState(0), &[eps, y]);
        let top = a.production(ProdId::from_index(3), ParseState(0), &[p1, p2]);
        let root = a.root(top);
        assert_eq!(a.kids(p1)[0], a.kids(p2)[0], "initially shared");
        let n = unshare_epsilon(&mut a, root);
        assert_eq!(n, 1);
        assert_ne!(a.kids(p1)[0], a.kids(p2)[0], "distinct after unsharing");
        // Both instances are structurally the same ε production.
        for p in [p1, p2] {
            let e = a.kids(p)[0];
            assert!(matches!(a.kind(e), NodeKind::Production { prod } if prod.index() == 2));
            assert_eq!(a.width(e), 0);
        }
    }

    #[test]
    fn non_null_sharing_is_preserved() {
        // Symbol-node alternatives legitimately share non-null subtrees.
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[x]);
        let sym = a.symbol(wg_grammar::NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        let root = a.root(sym);
        assert_eq!(unshare_epsilon(&mut a, root), 0);
        assert_eq!(
            a.kids(p1)[0],
            a.kids(p2)[0],
            "shared terminal remains shared"
        );
    }

    #[test]
    fn nested_epsilon_structures_clone_deeply() {
        let mut a = DagArena::new();
        let inner = a.production(ProdId::from_index(5), ParseState(1), &[]);
        let outer = a.production(ProdId::from_index(4), ParseState(1), &[inner]);
        let u = a.terminal(Terminal::from_index(1), "u");
        let v = a.terminal(Terminal::from_index(1), "v");
        let p1 = a.production(ProdId::from_index(1), ParseState(0), &[outer, u]);
        let p2 = a.production(ProdId::from_index(1), ParseState(0), &[outer, v]);
        let top = a.production(ProdId::from_index(3), ParseState(0), &[p1, p2]);
        let root = a.root(top);
        assert_eq!(unshare_epsilon(&mut a, root), 1);
        let o1 = a.kids(p1)[0];
        let o2 = a.kids(p2)[0];
        assert_ne!(o1, o2);
        assert_ne!(a.kids(o1)[0], a.kids(o2)[0], "inner ε cloned too");
    }

    #[test]
    fn unshared_tree_is_untouched() {
        let mut a = DagArena::new();
        let e1 = a.production(ProdId::from_index(2), ParseState(1), &[]);
        let x = a.terminal(Terminal::from_index(1), "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[e1, x]);
        let root = a.root(p);
        let len_before = a.len();
        assert_eq!(unshare_epsilon(&mut a, root), 0);
        assert_eq!(a.len(), len_before);
    }
}
