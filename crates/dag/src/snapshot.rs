//! Immutable, version-stamped snapshots of the dag for concurrent readers.
//!
//! # One writer, unbounded readers
//!
//! The arena is a single-writer structure: reparsing mutates nodes in
//! place. Reader threads therefore never touch the arena itself — instead
//! the writer *publishes* a [`DagSnapshot`]: an immutable copy-on-write
//! view assembled from fixed-size chunks. Chunks untouched since the last
//! publish are shared (`Arc` clone, O(1)); only chunks containing mutated
//! slots are re-materialized, so publish cost tracks the damage of the
//! preceding reparse cycle, not document size — the same bounded-work
//! contract the incremental parser itself obeys.
//!
//! Because `NodeId`s are stable (the arena recycles slots, never moves
//! them), a snapshot indexes its chunks by the very same ids the writer
//! uses: structural sharing needs no translation table.
//!
//! # Epoch-based reclamation
//!
//! Every snapshot pins the version stamp it was published at in a shared
//! registry. While any pin is live, the collector does not recycle dead
//! node slots: they go onto a *deferred free list* stamped with the version
//! at which they died. The list drains — oldest first, checked against the
//! oldest live pin — when the oldest pinned version advances past a slot's
//! death stamp (or when no pins remain). This keeps every slot's bits
//! intact for as long as some published version could still name it, and
//! bounds the backlog by the lifetime of the slowest reader.

use crate::node::{NodeId, NodeKind};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Nodes per snapshot chunk. Publishing re-materializes only chunks whose
/// slots were mutated since the previous publish.
pub(crate) const SNAP_CHUNK: usize = 256;

/// Read-only access to a parse dag, implemented by both the live
/// [`crate::DagArena`] (the writer's view) and the immutable
/// [`DagSnapshot`] (a reader's view). Analyses written against this trait
/// run unchanged on either side of the publish boundary.
pub trait DagRead {
    /// Number of node slots, live or free.
    fn node_count(&self) -> usize;
    /// The node's kind.
    fn kind(&self, id: NodeId) -> &NodeKind;
    /// Parent in the tree of this version ([`NodeId::NONE`] if detached).
    fn parent(&self, id: NodeId) -> NodeId;
    /// The node's children in yield order (alternatives for symbol nodes).
    fn kids(&self, id: NodeId) -> &[NodeId];
    /// Number of terminals in the node's yield.
    fn width(&self, id: NodeId) -> u32;
    /// Whether `id` names a node that is live in this version (neither
    /// free-listed nor awaiting deferred reclamation).
    fn is_live(&self, id: NodeId) -> bool;
}

/// One immutable chunk of a published snapshot: a slice of node images
/// plus a chunk-local pool holding their kid lists.
#[derive(Debug)]
pub(crate) struct SnapChunk {
    pub(crate) nodes: Vec<SnapNode>,
    pub(crate) kid_pool: Vec<NodeId>,
}

/// The published image of one node slot.
#[derive(Debug, Clone)]
pub(crate) struct SnapNode {
    pub(crate) kind: NodeKind,
    pub(crate) parent: NodeId,
    pub(crate) width: u32,
    /// Live at publish time (not free, not deferred).
    pub(crate) live: bool,
    pub(crate) kids_off: u32,
    pub(crate) kids_len: u32,
}

/// Shared pin registry: version stamp → number of live snapshots pinned at
/// that stamp. The writer consults the *oldest* key when draining its
/// deferred free list.
pub(crate) type PinRegistry = Arc<Mutex<BTreeMap<u64, usize>>>;

/// RAII pin on one published version. Dropping the guard (i.e. dropping
/// the snapshot) unpins; when a version's count reaches zero its entry is
/// removed, letting the writer's oldest-pin watermark advance.
#[derive(Debug)]
pub(crate) struct PinGuard {
    registry: PinRegistry,
    version: u64,
}

impl PinGuard {
    pub(crate) fn new(registry: PinRegistry, version: u64) -> PinGuard {
        *registry
            .lock()
            .expect("pin registry poisoned")
            .entry(version)
            .or_insert(0) += 1;
        PinGuard { registry, version }
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = match self.registry.lock() {
            Ok(p) => p,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(count) = pins.get_mut(&self.version) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.version);
            }
        }
    }
}

/// An immutable, version-stamped view of one parse dag, cheap to publish
/// (copy-on-write at chunk granularity) and safe to query from any number
/// of threads while the writer keeps reparsing.
///
/// The snapshot holds a pin guard: while it (or any clone of its
/// `Arc`-shared chunks) is alive, the writing arena will not recycle node
/// slots that were live at this version.
#[derive(Debug)]
pub struct DagSnapshot {
    chunks: Vec<Arc<SnapChunk>>,
    len: usize,
    version: u64,
    _pin: PinGuard,
}

impl DagSnapshot {
    pub(crate) fn new(
        chunks: Vec<Arc<SnapChunk>>,
        len: usize,
        version: u64,
        pin: PinGuard,
    ) -> DagSnapshot {
        DagSnapshot {
            chunks,
            len,
            version,
            _pin: pin,
        }
    }

    /// The version stamp this snapshot pins.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of node slots captured.
    pub fn node_count(&self) -> usize {
        self.len
    }

    #[inline]
    fn snap(&self, id: NodeId) -> &SnapNode {
        let i = id.index();
        assert!(i < self.len, "node id out of snapshot range");
        &self.chunks[i / SNAP_CHUNK].nodes[i % SNAP_CHUNK]
    }
}

impl DagRead for DagSnapshot {
    fn node_count(&self) -> usize {
        self.len
    }

    fn kind(&self, id: NodeId) -> &NodeKind {
        &self.snap(id).kind
    }

    fn parent(&self, id: NodeId) -> NodeId {
        self.snap(id).parent
    }

    fn kids(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        assert!(i < self.len, "node id out of snapshot range");
        let chunk = &self.chunks[i / SNAP_CHUNK];
        let n = &chunk.nodes[i % SNAP_CHUNK];
        &chunk.kid_pool[n.kids_off as usize..(n.kids_off + n.kids_len) as usize]
    }

    fn width(&self, id: NodeId) -> u32 {
        self.snap(id).width
    }

    fn is_live(&self, id: NodeId) -> bool {
        id.index() < self.len && self.snap(id).live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::DagArena;
    use crate::node::ParseState;
    use wg_grammar::{ProdId, Terminal};

    fn t(a: &mut DagArena, s: &str) -> NodeId {
        a.terminal(Terminal::from_index(1), s)
    }

    #[test]
    fn snapshot_mirrors_arena() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(3), &[x, y]);
        let root = a.root(p);
        let snap = a.publish();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.node_count(), a.node_count());
        for i in 0..a.node_count() {
            let id = NodeId(i as u32);
            assert_eq!(snap.kind(id), DagArena::kind(&a, id), "kind of {id:?}");
            assert_eq!(snap.kids(id), DagArena::kids(&a, id), "kids of {id:?}");
            assert_eq!(snap.width(id), DagArena::width(&a, id));
            assert_eq!(snap.parent(id), a.node(id).parent());
            assert_eq!(snap.is_live(id), DagArena::is_live(&a, id));
        }
        assert_eq!(snap.parent(x), p);
        assert_eq!(snap.kids(root).len(), 3);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        let snap = a.publish();
        // Mutate: replace the body, collect the old one.
        a.begin_epoch();
        let y = t(&mut a, "y");
        let p2 = a.production(ProdId::from_index(2), ParseState(0), &[y]);
        a.set_root_body(root, p2);
        a.collect_garbage(root);
        // The pinned snapshot still reads the old structure.
        assert!(snap.is_live(x));
        assert!(matches!(
            snap.kind(x),
            NodeKind::Terminal { lexeme, .. } if lexeme == "x"
        ));
        assert_eq!(snap.kids(root)[1], p);
        // The live arena has moved on.
        assert_eq!(DagArena::kids(&a, root)[1], p2);
    }

    #[test]
    fn pinned_snapshot_defers_slot_recycling() {
        let mut a = DagArena::new();
        let dead = t(&mut a, "doomed");
        let x = t(&mut a, "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        let snap = a.publish();
        assert_eq!(a.live_pins(), 1);
        a.collect_garbage(root);
        assert_eq!(
            a.deferred_free_backlog(),
            1,
            "dead slot deferred, not freed"
        );
        assert!(!DagArena::is_live(&a, dead), "deferred slots read as dead");
        assert!(snap.is_live(dead), "the pinned version saw it alive");
        assert!(matches!(
            snap.kind(dead),
            NodeKind::Terminal { lexeme, .. } if lexeme == "doomed"
        ));
        // While pinned, the slot's storage survives in the writer too.
        assert!(matches!(
            DagArena::kind(&a, dead),
            NodeKind::Terminal { lexeme, .. } if lexeme == "doomed"
        ));
        drop(snap);
        assert_eq!(a.live_pins(), 0);
        a.collect_garbage(root);
        assert_eq!(a.deferred_free_backlog(), 0, "backlog drains once unpinned");
        // The slot is recyclable again.
        let recycled = t(&mut a, "fresh");
        assert_eq!(recycled, dead);
    }

    #[test]
    fn publish_shares_untouched_chunks() {
        let mut a = DagArena::new();
        // Two chunks' worth of nodes.
        let kids: Vec<NodeId> = (0..(SNAP_CHUNK + 8))
            .map(|i| t(&mut a, &format!("k{i}")))
            .collect();
        let p = a.production(ProdId::from_index(1), ParseState(0), &kids);
        let root = a.root(p);
        let s1 = a.publish();
        // Touch only the tail: chunk 0 must be shared, the tail chunk not.
        a.begin_epoch();
        let extra = t(&mut a, "extra");
        a.set_root_body(root, extra);
        let s2 = a.publish();
        assert_eq!(s2.version(), 2);
        assert!(
            Arc::ptr_eq(&s1.chunks[0], &s2.chunks[0]),
            "untouched chunk is shared across publishes"
        );
        assert!(
            !Arc::ptr_eq(s1.chunks.last().unwrap(), &s2.chunks[s1.chunks.len() - 1]),
            "mutated chunk is re-materialized"
        );
    }

    #[test]
    fn drain_respects_oldest_pin_stamp() {
        let mut a = DagArena::new();
        let d1 = t(&mut a, "d1");
        let x = t(&mut a, "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        let old = a.publish(); // version 1 saw d1 alive
        a.collect_garbage(root); // d1 deferred at stamp 1
        assert_eq!(a.deferred_free_backlog(), 1);
        let newer = a.publish(); // version 2: d1 already dead
        a.collect_garbage(root);
        assert_eq!(
            a.deferred_free_backlog(),
            1,
            "oldest pin (v1) still blocks the stamp-1 slot"
        );
        drop(old);
        a.collect_garbage(root);
        assert_eq!(
            a.deferred_free_backlog(),
            0,
            "v2 pin does not block a slot that died at stamp 1"
        );
        assert!(
            !newer.is_live(d1),
            "the newer snapshot published it as dead"
        );
        drop(newer);
    }
}
