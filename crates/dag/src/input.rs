//! The incremental parser's input stream: a lazy, destructuring traversal of
//! the previous version of the parse dag (Appendix A's `pop_lookahead` /
//! `left_breakdown`).
//!
//! The stream's items are whole subtrees of the prior tree, interleaved with
//! fresh terminal nodes spliced in by the incremental lexer. Subtrees whose
//! yield (or trailing lookahead) was modified are decomposed on the way in;
//! the parsers decompose further when state-matching fails or the parse
//! turns non-deterministic.

use crate::arena::DagArena;
use crate::fx::FxHashMap;
use crate::node::{NodeId, NodeKind};

/// A lazy input stream over the previous tree version.
#[derive(Debug, Clone)]
pub struct InputStream {
    /// Pending subtrees; the top of the stack is the current lookahead.
    stack: Vec<NodeId>,
    /// Relex results: modified terminal → replacement terminals (possibly
    /// empty for deletions). Fresh insertions ride on the neighbouring
    /// modified terminal.
    replacements: FxHashMap<NodeId, Vec<NodeId>>,
}

impl InputStream {
    /// A stream over the previous tree's body and EOS sentinel. `root` must
    /// be a [`NodeKind::Root`].
    pub fn over_tree(
        arena: &DagArena,
        root: NodeId,
        replacements: FxHashMap<NodeId, Vec<NodeId>>,
    ) -> InputStream {
        assert!(matches!(arena.kind(root), NodeKind::Root));
        let kids = arena.kids(root);
        let mut stream = InputStream {
            // Reverse order: eos deepest, body on top (bos is skipped).
            stack: vec![kids[2], kids[1]],
            replacements,
        };
        stream.normalize(arena);
        stream
    }

    /// A stream over fresh terminals only (initial parse): the terminals
    /// followed by `eos`.
    pub fn over_terminals(arena: &DagArena, terminals: &[NodeId], eos: NodeId) -> InputStream {
        debug_assert!(matches!(arena.kind(eos), NodeKind::Eos));
        let mut stack = vec![eos];
        stack.extend(terminals.iter().rev());
        InputStream {
            stack,
            replacements: FxHashMap::default(),
        }
    }

    /// The current lookahead subtree, or `None` when exhausted.
    #[inline]
    pub fn la(&self) -> Option<NodeId> {
        self.stack.last().copied()
    }

    /// Consumes the current lookahead (it was shifted whole).
    pub fn pop(&mut self, arena: &DagArena) {
        self.stack.pop();
        self.normalize(arena);
    }

    /// Decomposes the current lookahead one level: replaces it by its
    /// children (Appendix A's `left_breakdown`). Terminals are atomic: a
    /// terminal lookahead is left in place. Returns the new lookahead.
    pub fn left_breakdown(&mut self, arena: &DagArena) -> Option<NodeId> {
        if let Some(&top) = self.stack.last() {
            if !arena.kind(top).is_terminal() {
                self.stack.pop();
                self.push_children(arena, top);
                self.normalize(arena);
            }
        }
        self.la()
    }

    /// Pushes a node's children in reverse. Choice nodes contribute only
    /// their first interpretation: the alternatives cover the same yield,
    /// and the re-parse of a decomposed ambiguous region rediscovers every
    /// interpretation from the terminals.
    fn push_children(&mut self, arena: &DagArena, node: NodeId) {
        if matches!(arena.kind(node), NodeKind::Symbol { .. }) {
            if let Some(&first) = arena.kids(node).first() {
                self.stack.push(first);
            }
        } else {
            let kids = arena.kids(node);
            self.stack.extend(kids.iter().rev());
        }
    }

    /// Establishes the stream invariant: the lookahead is never a modified
    /// terminal (replacements are spliced in), never a subtree with changes
    /// in its yield (decomposed to expose the edit site), and never a BOS
    /// sentinel.
    fn normalize(&mut self, arena: &DagArena) {
        while let Some(&top) = self.stack.last() {
            match arena.kind(top) {
                NodeKind::Bos => {
                    self.stack.pop();
                }
                NodeKind::Terminal { .. } if self.replacements.contains_key(&top) => {
                    self.stack.pop();
                    let reps = &self.replacements[&top];
                    self.stack.extend(reps.iter().rev());
                }
                NodeKind::Terminal { .. } | NodeKind::Eos => break,
                _ if arena.has_changes(top) => {
                    self.stack.pop();
                    self.push_children(arena, top);
                }
                _ => break,
            }
        }
    }

    /// Number of pending items (diagnostics).
    pub fn pending(&self) -> usize {
        self.stack.len()
    }

    /// Debug view of the pending stack, top first (diagnostics).
    pub fn debug_stack(&self, arena: &DagArena) -> String {
        self.stack
            .iter()
            .rev()
            .map(|&n| format!("{:?}#{:?}w{}", arena.kind(n), n, arena.width(n)))
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// The terminal the next shift will ultimately consume — the paper's
    /// `redLa` when a non-trivial subtree is the lookahead: reductions index
    /// the parse table with the leading terminal of the upcoming input,
    /// computed on the effective (post-replacement) stream. Null-yield
    /// items are skipped; end of stream maps to EOF.
    pub fn reduction_terminal(&self, arena: &DagArena) -> wg_grammar::Terminal {
        for &item in self.stack.iter().rev() {
            // Unchanged subtrees with deterministic states have a valid
            // cached leading terminal: their parent chains are unique, so a
            // replaced leading token always marks them changed. Inside
            // non-deterministic regions terminals are shared between
            // alternatives and only one parent chain gets marked, so those
            // (small) regions take the exact recursive scan below.
            if !arena.has_changes(item) {
                match arena.kind(item) {
                    NodeKind::Eos => return wg_grammar::Terminal::EOF,
                    NodeKind::Bos => continue,
                    NodeKind::Terminal { term, .. }
                        if self.replacements.is_empty()
                            || !self.replacements.contains_key(&item) =>
                    {
                        return *term;
                    }
                    _ if arena.width(item) > 0
                        && !arena.kind(item).is_terminal()
                        && (arena.state(item).is_deterministic()
                            || self.replacements.is_empty()) =>
                    {
                        return arena.node(item).leftmost();
                    }
                    _ => {}
                }
            }
            if let Some(t) = self.leftmost_effective(arena, item) {
                return t;
            }
        }
        wg_grammar::Terminal::EOF
    }

    /// Leftmost terminal of the *effective* content of `node`: replaced
    /// terminals contribute their replacements (a deleted token contributes
    /// nothing), so reductions never consult stale text.
    fn leftmost_effective(&self, arena: &DagArena, node: NodeId) -> Option<wg_grammar::Terminal> {
        match arena.kind(node) {
            NodeKind::Terminal { term, .. } => match self.replacements.get(&node) {
                None => Some(*term),
                Some(reps) => reps.iter().find_map(|&r| self.leftmost_effective(arena, r)),
            },
            NodeKind::Eos => Some(wg_grammar::Terminal::EOF),
            NodeKind::Bos => None,
            NodeKind::Symbol { .. } => arena
                .kids(node)
                .first()
                .and_then(|&k| self.leftmost_effective(arena, k)),
            _ => arena
                .kids(node)
                .iter()
                .find_map(|&k| self.leftmost_effective(arena, k)),
        }
    }

    /// Splices extra terminals immediately before the EOS sentinel (used
    /// when text is appended at the very end of the document).
    pub fn append_before_eos(&mut self, arena: &DagArena, nodes: &[NodeId]) {
        // The EOS is the deepest stack entry.
        if !nodes.is_empty() {
            debug_assert!(self
                .stack
                .first()
                .is_some_and(|&b| matches!(arena.kind(b), NodeKind::Eos)));
            let mut new_stack = Vec::with_capacity(self.stack.len() + nodes.len());
            new_stack.push(self.stack[0]);
            new_stack.extend(nodes.iter().rev());
            new_stack.extend_from_slice(&self.stack[1..]);
            self.stack = new_stack;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ParseState;
    use wg_grammar::{ProdId, Terminal};

    /// root(P(a, Q(b, c), d)) — a small tree to stream over.
    fn sample() -> (DagArena, NodeId, Vec<NodeId>) {
        let mut a = DagArena::new();
        let ta = a.terminal(Terminal::from_index(1), "a");
        let tb = a.terminal(Terminal::from_index(1), "b");
        let tc = a.terminal(Terminal::from_index(1), "c");
        let q = a.production(ProdId::from_index(2), ParseState(1), &[tb, tc]);
        let td = a.terminal(Terminal::from_index(1), "d");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[ta, q, td]);
        let root = a.root(p);
        (a, root, vec![ta, tb, tc, td, q, p])
    }

    #[test]
    fn unchanged_tree_streams_body_then_eos() {
        let (a, root, ids) = sample();
        let p = ids[5];
        let mut s = InputStream::over_tree(&a, root, FxHashMap::default());
        assert_eq!(s.la(), Some(p), "whole body offered as one subtree");
        s.pop(&a);
        assert!(matches!(a.kind(s.la().unwrap()), NodeKind::Eos));
        s.pop(&a);
        assert_eq!(s.la(), None);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn breakdown_exposes_children_left_to_right() {
        let (a, root, ids) = sample();
        let (ta, q, td) = (ids[0], ids[4], ids[5 - 2]);
        let _ = td;
        let mut s = InputStream::over_tree(&a, root, FxHashMap::default());
        let la = s.left_breakdown(&a);
        assert_eq!(la, Some(ta));
        s.pop(&a);
        assert_eq!(s.la(), Some(q), "middle subtree stays whole");
        // Terminals are atomic under breakdown.
        s.pop(&a);
        let td = s.la().unwrap();
        assert_eq!(s.left_breakdown(&a), Some(td));
    }

    #[test]
    fn changed_subtrees_are_decomposed_on_entry() {
        let (mut a, root, ids) = sample();
        let (ta, tb, tc, q) = (ids[0], ids[1], ids[2], ids[4]);
        // Modify b: the path root->P->Q->b is marked; entry normalization
        // must break P and Q down but splice b's replacement.
        let nb = a.terminal(Terminal::from_index(1), "B");
        a.mark_changed(tb);
        let mut reps = FxHashMap::default();
        reps.insert(tb, vec![nb]);
        let mut s = InputStream::over_tree(&a, root, reps);
        assert_eq!(s.la(), Some(ta), "unchanged leading terminal");
        s.pop(&a);
        assert_eq!(s.la(), Some(nb), "replacement spliced in place of b");
        assert_ne!(s.la(), Some(q), "changed Q must not be offered whole");
        s.pop(&a);
        assert_eq!(s.la(), Some(tc), "unchanged sibling survives");
    }

    #[test]
    fn deletion_splices_empty_replacement() {
        let (mut a, root, ids) = sample();
        let (ta, tb, tc) = (ids[0], ids[1], ids[2]);
        a.mark_changed(tb);
        let mut reps = FxHashMap::default();
        reps.insert(tb, vec![]);
        let mut s = InputStream::over_tree(&a, root, reps);
        assert_eq!(s.la(), Some(ta));
        s.pop(&a);
        assert_eq!(s.la(), Some(tc), "deleted terminal vanished from stream");
    }

    #[test]
    fn insertion_rides_on_neighbouring_terminal() {
        let (mut a, root, ids) = sample();
        let tb = ids[1];
        let n1 = a.terminal(Terminal::from_index(1), "x");
        let n2 = a.terminal(Terminal::from_index(1), "y");
        a.mark_changed(tb);
        let mut reps = FxHashMap::default();
        reps.insert(tb, vec![n1, n2]);
        let mut s = InputStream::over_tree(&a, root, reps);
        s.pop(&a); // a
        assert_eq!(s.la(), Some(n1));
        s.pop(&a);
        assert_eq!(s.la(), Some(n2));
    }

    #[test]
    fn over_terminals_streams_in_order() {
        let mut a = DagArena::new();
        let t1 = a.terminal(Terminal::from_index(1), "1");
        let t2 = a.terminal(Terminal::from_index(1), "2");
        // Borrow an EOS by building a root over a dummy.
        let root = a.root(t1);
        let eos = a.kids(root)[2];
        let mut s = InputStream::over_terminals(&a, &[t1, t2], eos);
        assert_eq!(s.la(), Some(t1));
        s.pop(&a);
        assert_eq!(s.la(), Some(t2));
        s.pop(&a);
        assert_eq!(s.la(), Some(eos));
    }

    #[test]
    fn reduction_terminal_peeks_leading_token() {
        let (a, root, ids) = sample();
        let mut s = InputStream::over_tree(&a, root, FxHashMap::default());
        // Whole body: leading terminal is 'a' (index 1 terminal).
        assert_eq!(s.reduction_terminal(&a), Terminal::from_index(1));
        s.pop(&a); // consume body; Eos remains
        assert_eq!(s.reduction_terminal(&a), Terminal::EOF);
        let _ = ids;
    }

    #[test]
    fn reduction_terminal_skips_null_yield_items() {
        let mut a = DagArena::new();
        let eps = a.production(ProdId::from_index(9), ParseState(1), &[]);
        let tx = a.terminal(Terminal::from_index(3), "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[eps, tx]);
        let root = a.root(p);
        let mut s = InputStream::over_tree(&a, root, FxHashMap::default());
        s.left_breakdown(&a); // [eps, x, eos]
        assert_eq!(s.reduction_terminal(&a), Terminal::from_index(3));
    }

    #[test]
    fn append_before_eos_splices_at_end() {
        let (mut a, root, _ids) = sample();
        let extra = a.terminal(Terminal::from_index(2), "zz");
        let mut s = InputStream::over_tree(&a, root, FxHashMap::default());
        s.append_before_eos(&a, &[extra]);
        s.pop(&a); // body
        assert_eq!(s.la(), Some(extra));
        s.pop(&a);
        assert!(matches!(a.kind(s.la().unwrap()), NodeKind::Eos));
    }

    #[test]
    fn epsilon_subtree_dropped_when_changed() {
        let mut a = DagArena::new();
        let eps = a.production(ProdId::from_index(9), ParseState(1), &[]);
        let tx = a.terminal(Terminal::from_index(1), "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[eps, tx]);
        let root = a.root(p);
        a.mark_changed(eps);
        let s = InputStream::over_tree(&a, root, FxHashMap::default());
        assert_eq!(s.la(), Some(tx), "changed ε subtree evaporates");
    }
}
