//! The node arena: construction, adoption, damage marking, and reclamation.
//!
//! # Memory discipline
//!
//! The arena is built for a **zero-allocation steady state**: a warm
//! interactive session performs reparse after reparse without ever asking
//! the system allocator for node storage.
//!
//! * **Kid slab.** Nodes do not own a `Vec<NodeId>`; small kid lists (≤ 3)
//!   live inline in the node and wider ones occupy `(offset, len, cap)`
//!   regions of one shared `Vec<NodeId>` slab. Regions come in power-of-two
//!   capacity classes and dead regions are recycled through per-class free
//!   lists, so node construction touches the allocator only while the slab's
//!   high-water mark is still growing.
//! * **Node free list.** Dead node slots (found by [`DagArena::collect_garbage`])
//!   are recycled before the `nodes` vector grows —
//!   the same `fresh_allocs` discipline the GSS pools use. The
//!   [`DagArena::fresh_node_slots`] / [`DagArena::recycled_node_slots`]
//!   counters make the claim assertable.
//! * **Incremental GC, stable ids.** [`DagArena::collect_garbage`] marks the
//!   live tree (pooled mark-bitmap and stack) and sweeps dead slots onto the
//!   free lists. `NodeId`s never move: callers holding ids into live
//!   structure (the token tape, semantic annotations) are unaffected, and no
//!   remap table exists. Cost is O(live) per collection, and collections are
//!   triggered every Θ(live) allocations (see [`DagArena::should_collect`]),
//!   so reclamation is amortized O(1) per node built.

use crate::node::{Kids, Node, NodeId, NodeKind, ParseState, INLINE_KIDS};
use crate::snapshot::{
    DagRead, DagSnapshot, PinGuard, PinRegistry, SnapChunk, SnapNode, SNAP_CHUNK,
};
use std::sync::Arc;
use wg_grammar::{NonTerminal, ProdId, Terminal};

/// Smallest slab region capacity (power of two).
const MIN_REGION: u32 = 4;

/// Owning store for all nodes of (successive versions of) one parse dag.
///
/// Reparsing builds new nodes into the same arena while the previous
/// version's structure stays intact — exactly the property the incremental
/// parser needs to traverse the prior version while constructing the new one
/// (the paper's self-versioning document substrate). Call
/// [`DagArena::collect_garbage`] between analyses to recycle unreachable
/// versions; node ids stay stable across collections.
#[derive(Debug, Clone, Default)]
pub struct DagArena {
    nodes: Vec<Node>,
    /// Shared storage for kid lists wider than the inline capacity.
    slab: Vec<NodeId>,
    /// Free slab regions, bucketed by power-of-two capacity class
    /// (`free_regions[c]` holds offsets of free regions of capacity
    /// `MIN_REGION << c`).
    free_regions: Vec<Vec<u32>>,
    /// Dead node slots available for reuse.
    free_nodes: Vec<NodeId>,
    epoch: u32,
    /// Nodes flagged by the current damage-marking pass (for cheap clearing).
    dirty_log: Vec<NodeId>,
    /// Old nodes retained by bottom-up reuse this epoch (diagnostics).
    retained: usize,
    /// Parent pointers of prior-epoch nodes overwritten this epoch, so a
    /// *failed* parse attempt can be rolled back: the old tree's damage
    /// marking depends on its parent chains staying intact.
    parent_log: Vec<(NodeId, NodeId)>,
    /// Pooled mark state for [`DagArena::collect_garbage`]: a slot is marked
    /// when its entry equals the current `gc_gen`, so clearing between
    /// collections is free.
    mark_gen: Vec<u32>,
    gc_gen: u32,
    /// Pooled traversal stack for the mark phase.
    gc_stack: Vec<NodeId>,
    /// Node slots taken by growing `nodes` (never recycled storage).
    fresh_slots: u64,
    /// Node slots served from the free list.
    recycled_slots: u64,
    /// Slab words taken by growing the slab (never a recycled region).
    fresh_slab_words: u64,
    /// Nodes built since the last collection (drives the GC trigger).
    allocs_since_gc: usize,
    /// Published-chunk cache: chunk `c` covers node slots
    /// `[c * SNAP_CHUNK, (c + 1) * SNAP_CHUNK)`. [`DagArena::publish`]
    /// re-materializes only chunks flagged in `snap_dirty` and shares the
    /// rest by `Arc` clone.
    snap_chunks: Vec<Arc<SnapChunk>>,
    /// Chunks containing slots mutated since the last publish.
    snap_dirty: Vec<bool>,
    /// Version stamp of the most recent publish.
    snap_version: u64,
    /// Versions pinned by live snapshots (shared with their [`PinGuard`]s;
    /// a cloned arena shares the registry, which is conservative: clones
    /// respect each other's pins).
    pins: PinRegistry,
    /// Dead slots whose recycling is deferred while snapshots pin versions
    /// that saw them alive: `(version stamp at death, slot)`, stamped in
    /// monotonically non-decreasing order.
    deferred_frees: Vec<(u64, NodeId)>,
}

impl DagArena {
    /// An empty arena at epoch 0.
    pub fn new() -> DagArena {
        DagArena::default()
    }

    /// Number of node slots, live or free (the storage high-water mark).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of slots actually holding nodes (len minus the free list).
    pub fn in_use(&self) -> usize {
        self.nodes.len() - self.free_nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node slots created by growing the arena (not recycled). Constant in
    /// a warm session — the dag-side analogue of the GSS `fresh_allocs`
    /// discipline.
    pub fn fresh_node_slots(&self) -> u64 {
        self.fresh_slots
    }

    /// Node slots served from the free list.
    pub fn recycled_node_slots(&self) -> u64 {
        self.recycled_slots
    }

    /// Bytes of kid-slab storage ever claimed from the allocator (the slab's
    /// high-water mark; recycled regions do not count).
    pub fn kid_slab_bytes(&self) -> u64 {
        self.fresh_slab_words * std::mem::size_of::<NodeId>() as u64
    }

    /// Nodes built since the last garbage collection.
    pub fn allocs_since_gc(&self) -> usize {
        self.allocs_since_gc
    }

    /// Whether enough garbage has plausibly accumulated to make a collection
    /// worthwhile: Θ(live) allocations since the last one. Collecting on
    /// this cadence keeps the free lists fed (so a warm session recycles
    /// instead of growing) while amortizing the O(live) mark phase down to
    /// O(1) per node built.
    pub fn should_collect(&self) -> bool {
        self.allocs_since_gc >= 64.max(self.in_use() / 4)
    }

    /// The current parse generation.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Flags the snapshot chunk containing `id` as mutated since the last
    /// publish. Called by every mutation that changes snapshot-visible
    /// node state (kind, parent, kids, width, liveness) — `changed`-flag
    /// and mark traffic is exempt, as snapshots do not capture it.
    #[inline]
    fn touch(&mut self, id: NodeId) {
        let c = id.index() / SNAP_CHUNK;
        if c >= self.snap_dirty.len() {
            self.snap_dirty.resize(c + 1, true);
        } else {
            self.snap_dirty[c] = true;
        }
    }

    /// Starts a new parse generation (nodes created from here on can be
    /// mutated in place by sequence accumulation; older nodes cannot).
    pub fn begin_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.retained = 0;
        self.parent_log.clear();
        self.epoch
    }

    /// Undoes every parent-pointer overwrite of prior-epoch nodes made this
    /// epoch. Call when a parse attempt fails and the previous tree stays
    /// authoritative; the fresh nodes it built become garbage, but the old
    /// tree's parent chains (and thus future damage marking) are restored.
    pub fn rollback_parents(&mut self) {
        for (node, old_parent) in std::mem::take(&mut self.parent_log).into_iter().rev() {
            self.nodes[node.index()].parent = old_parent;
            self.touch(node);
        }
    }

    fn set_parent(&mut self, kid: NodeId, parent: NodeId) {
        if self.nodes[kid.index()].epoch != self.epoch && self.nodes[kid.index()].parent != parent {
            self.parent_log.push((kid, self.nodes[kid.index()].parent));
        }
        self.nodes[kid.index()].parent = parent;
        self.touch(kid);
    }

    /// How many previous-version nodes bottom-up reuse retained this epoch
    /// (the paper's explicit node retention, its ref. 25).
    pub fn retained_this_epoch(&self) -> usize {
        self.retained
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is [`NodeId::NONE`] or out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Shorthand for `node(id).kind()`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The node's children, in yield order (for symbol nodes: the
    /// alternatives). Resolves inline storage or the shared kid slab.
    #[inline]
    pub fn kids(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kids {
            Kids::Inline { buf, len } => &buf[..*len as usize],
            Kids::Slab { off, len, .. } => &self.slab[*off as usize..(*off + *len) as usize],
        }
    }

    /// Number of children without materializing the slice.
    #[inline]
    pub fn kid_count(&self, id: NodeId) -> usize {
        self.nodes[id.index()].kids.len()
    }

    #[inline]
    fn kid_at(&self, id: NodeId, i: usize) -> NodeId {
        self.kids(id)[i]
    }

    /// Shorthand for `node(id).state()`.
    #[inline]
    pub fn state(&self, id: NodeId) -> ParseState {
        self.nodes[id.index()].state
    }

    /// Shorthand for `node(id).width()`.
    #[inline]
    pub fn width(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].width
    }

    /// Whether the node was created in the current epoch.
    #[inline]
    pub fn is_current_epoch(&self, id: NodeId) -> bool {
        self.nodes[id.index()].epoch == self.epoch
    }

    /// Whether `id` names a live node slot (neither on the free list nor
    /// retired onto the deferred free list awaiting snapshot pins).
    /// Analyses holding `NodeId`-keyed side tables use this after a
    /// collection to drop facts about reclaimed nodes before their slots
    /// are recycled.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
            && !self.nodes[id.index()].free
            && !self.nodes[id.index()].deferred
    }

    // ----- slab regions -----

    #[inline]
    fn class_of(cap: u32) -> usize {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_REGION);
        (cap.trailing_zeros() - MIN_REGION.trailing_zeros()) as usize
    }

    fn alloc_region(&mut self, cap: u32) -> u32 {
        let class = Self::class_of(cap);
        if let Some(free) = self.free_regions.get_mut(class) {
            if let Some(off) = free.pop() {
                return off;
            }
        }
        let off = self.slab.len() as u32;
        self.slab
            .resize(self.slab.len() + cap as usize, NodeId::NONE);
        self.fresh_slab_words += u64::from(cap);
        off
    }

    fn free_region(&mut self, off: u32, cap: u32) {
        let class = Self::class_of(cap);
        if self.free_regions.len() <= class {
            self.free_regions.resize_with(class + 1, Vec::new);
        }
        self.free_regions[class].push(off);
    }

    /// Stores a kid list inline or in a slab region.
    fn intern_kids(&mut self, kids: &[NodeId]) -> Kids {
        if kids.len() <= INLINE_KIDS {
            let mut buf = [NodeId::NONE; INLINE_KIDS];
            buf[..kids.len()].copy_from_slice(kids);
            Kids::Inline {
                buf,
                len: kids.len() as u8,
            }
        } else {
            let cap = (kids.len() as u32).next_power_of_two().max(MIN_REGION);
            let off = self.alloc_region(cap);
            self.slab[off as usize..off as usize + kids.len()].copy_from_slice(kids);
            Kids::Slab {
                off,
                len: kids.len() as u32,
                cap,
            }
        }
    }

    /// Appends one kid id, spilling inline storage to the slab or relocating
    /// a full region to the next capacity class as needed.
    fn kids_push(&mut self, id: NodeId, kid: NodeId) {
        self.touch(id);
        match self.nodes[id.index()].kids {
            Kids::Inline { mut buf, len } if (len as usize) < INLINE_KIDS => {
                buf[len as usize] = kid;
                self.nodes[id.index()].kids = Kids::Inline { buf, len: len + 1 };
            }
            Kids::Inline { buf, len } => {
                debug_assert_eq!(len as usize, INLINE_KIDS);
                let cap = (INLINE_KIDS as u32 + 1).next_power_of_two().max(MIN_REGION);
                let off = self.alloc_region(cap);
                self.slab[off as usize..off as usize + INLINE_KIDS].copy_from_slice(&buf);
                self.slab[off as usize + INLINE_KIDS] = kid;
                self.nodes[id.index()].kids = Kids::Slab {
                    off,
                    len: len as u32 + 1,
                    cap,
                };
            }
            Kids::Slab { off, len, cap } if len < cap => {
                self.slab[(off + len) as usize] = kid;
                self.nodes[id.index()].kids = Kids::Slab {
                    off,
                    len: len + 1,
                    cap,
                };
            }
            Kids::Slab { off, len, cap } => {
                let new_cap = cap * 2;
                let new_off = self.alloc_region(new_cap);
                self.slab
                    .copy_within(off as usize..(off + len) as usize, new_off as usize);
                self.slab[(new_off + len) as usize] = kid;
                self.free_region(off, cap);
                self.nodes[id.index()].kids = Kids::Slab {
                    off: new_off,
                    len: len + 1,
                    cap: new_cap,
                };
            }
        }
    }

    /// Replaces a node's kid storage, reusing its slab region when the new
    /// list still fits.
    fn store_kids(&mut self, id: NodeId, kids: &[NodeId]) {
        self.touch(id);
        match self.nodes[id.index()].kids {
            Kids::Slab { off, cap, .. }
                if kids.len() > INLINE_KIDS && kids.len() <= cap as usize =>
            {
                self.slab[off as usize..off as usize + kids.len()].copy_from_slice(kids);
                self.nodes[id.index()].kids = Kids::Slab {
                    off,
                    len: kids.len() as u32,
                    cap,
                };
            }
            Kids::Slab { off, cap, .. } => {
                self.free_region(off, cap);
                self.nodes[id.index()].kids = self.intern_kids(kids);
            }
            Kids::Inline { .. } => {
                self.nodes[id.index()].kids = self.intern_kids(kids);
            }
        }
    }

    // ----- node slots -----

    fn push(&mut self, node: Node) -> NodeId {
        self.allocs_since_gc += 1;
        let id = if let Some(id) = self.free_nodes.pop() {
            debug_assert!(self.nodes[id.index()].free, "free list holds live node");
            self.recycled_slots += 1;
            self.nodes[id.index()] = node;
            id
        } else {
            self.fresh_slots += 1;
            self.nodes.push(node);
            NodeId(self.nodes.len() as u32 - 1)
        };
        self.touch(id);
        id
    }

    /// Leading terminal over a kid list (EOF placeholder when null-yield).
    fn leftmost_of(&self, kids: &[NodeId]) -> Terminal {
        kids.iter()
            .find(|&&k| self.width(k) > 0)
            .map(|&k| self.nodes[k.index()].leftmost)
            .unwrap_or(Terminal::EOF)
    }

    fn width_of(&self, kids: &[NodeId]) -> u32 {
        kids.iter().map(|k| self.width(*k)).sum()
    }

    /// Creates a token node.
    pub fn terminal(&mut self, term: Terminal, lexeme: &str) -> NodeId {
        self.push(Node {
            kind: NodeKind::Terminal {
                term,
                lexeme: lexeme.to_string(),
            },
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Kids::EMPTY,
            width: 1,
            leftmost: term,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        })
    }

    /// Creates a production node over `kids` (adopting them), recording the
    /// parse state preceding the nonterminal (Appendix A's `get_node`).
    pub fn production(&mut self, prod: ProdId, state: ParseState, kids: &[NodeId]) -> NodeId {
        let width = self.width_of(kids);
        let leftmost = self.leftmost_of(kids);
        let stored = self.intern_kids(kids);
        let id = self.push(Node {
            kind: NodeKind::Production { prod },
            state,
            parent: NodeId::NONE,
            kids: stored,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        self.adopt(id);
        id
    }

    /// Creates a symbol (choice) node with one initial interpretation.
    /// Symbol nodes have no deterministic state by definition (Appendix A).
    pub fn symbol(&mut self, symbol: NonTerminal, first: NodeId) -> NodeId {
        let width = self.width(first);
        let leftmost = self.nodes[first.index()].leftmost;
        let stored = self.intern_kids(&[first]);
        let id = self.push(Node {
            kind: NodeKind::Symbol { symbol },
            state: ParseState::MULTI,
            parent: NodeId::NONE,
            kids: stored,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        self.set_parent(first, id);
        id
    }

    /// Adds an alternative interpretation to a symbol node.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not a symbol node or the widths disagree
    /// (alternatives must share their yield).
    pub fn add_choice(&mut self, sym: NodeId, alt: NodeId) {
        assert!(
            matches!(self.kind(sym), NodeKind::Symbol { .. }),
            "add_choice target must be a symbol node"
        );
        assert_eq!(
            self.width(sym),
            self.width(alt),
            "alternatives must cover the same yield"
        );
        if !self.kids(sym).contains(&alt) {
            self.kids_push(sym, alt);
            self.set_parent(alt, sym);
        }
    }

    /// Creates a sequence node (complete or prefix instance of a declared
    /// associative sequence).
    pub fn sequence(&mut self, symbol: NonTerminal, state: ParseState, kids: &[NodeId]) -> NodeId {
        let width = self.width_of(kids);
        let leftmost = self.leftmost_of(kids);
        let stored = self.intern_kids(kids);
        let id = self.push(Node {
            kind: NodeKind::Sequence { symbol },
            state,
            parent: NodeId::NONE,
            kids: stored,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        self.adopt(id);
        id
    }

    /// Creates an internal sequence run.
    pub fn seq_run(&mut self, symbol: NonTerminal, state: ParseState, kids: &[NodeId]) -> NodeId {
        let width = self.width_of(kids);
        let leftmost = self.leftmost_of(kids);
        let stored = self.intern_kids(kids);
        let id = self.push(Node {
            kind: NodeKind::SeqRun { symbol },
            state,
            parent: NodeId::NONE,
            kids: stored,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        self.adopt(id);
        id
    }

    /// Appends steps to a sequence node created in the *current* epoch
    /// (in-place accumulation during parsing).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a sequence node or was created in an earlier
    /// epoch (older nodes may be shared with the previous version and must
    /// not be mutated).
    pub fn seq_append(&mut self, seq: NodeId, steps: &[NodeId]) {
        assert!(
            matches!(self.kind(seq), NodeKind::Sequence { .. }),
            "seq_append target must be a sequence node"
        );
        assert!(
            self.is_current_epoch(seq),
            "only nodes of the current epoch may be mutated"
        );
        let extra: u32 = steps.iter().map(|k| self.width(*k)).sum();
        self.touch(seq);
        for &s in steps {
            self.set_parent(s, seq);
            self.kids_push(seq, s);
        }
        if self.nodes[seq.index()].width == 0 && extra > 0 {
            self.nodes[seq.index()].leftmost = self.leftmost_of(steps);
        }
        self.nodes[seq.index()].width += extra;
    }

    /// Converts a `Production` fallback node (built over a lowered sequence
    /// production while the parse was non-deterministic) into a proper
    /// [`NodeKind::Sequence`] with the given preceding state. Used by the
    /// rebalancing post-pass when it canonicalizes fallback chains.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a production node.
    pub fn convert_to_sequence(&mut self, id: NodeId, symbol: NonTerminal, state: ParseState) {
        assert!(
            matches!(self.kind(id), NodeKind::Production { .. }),
            "convert_to_sequence expects a production fallback"
        );
        self.nodes[id.index()].kind = NodeKind::Sequence { symbol };
        self.nodes[id.index()].state = state;
        self.touch(id);
    }

    /// Replaces the children of a node (used by the rebalancing and
    /// unsharing post-passes). Widths are recomputed; kids are adopted.
    pub fn set_kids(&mut self, id: NodeId, kids: &[NodeId]) {
        let width = self.width_of(kids);
        let leftmost = self.leftmost_of(kids);
        self.store_kids(id, kids);
        self.nodes[id.index()].width = width;
        self.nodes[id.index()].leftmost = leftmost;
        self.adopt(id);
    }

    /// Replaces every occurrence of `old` among `id`'s children with `new`,
    /// adopting `new`. Width and leading terminal are unchanged by
    /// construction — the caller guarantees `old` and `new` cover the same
    /// yield (proxy upgrades, choice collapses). Returns how many slots were
    /// patched.
    pub fn replace_kid(&mut self, id: NodeId, old: NodeId, new: NodeId) -> usize {
        debug_assert_eq!(self.width(old), self.width(new));
        self.touch(id);
        let mut patched = 0;
        match self.nodes[id.index()].kids {
            Kids::Inline { mut buf, len } => {
                for slot in buf.iter_mut().take(len as usize) {
                    if *slot == old {
                        *slot = new;
                        patched += 1;
                    }
                }
                if patched > 0 {
                    self.nodes[id.index()].kids = Kids::Inline { buf, len };
                }
            }
            Kids::Slab { off, len, .. } => {
                for slot in &mut self.slab[off as usize..(off + len) as usize] {
                    if *slot == old {
                        *slot = new;
                        patched += 1;
                    }
                }
            }
        }
        if patched > 0 {
            self.set_parent(new, id);
        }
        patched
    }

    fn adopt(&mut self, parent: NodeId) {
        for i in 0..self.kid_count(parent) {
            let k = self.kid_at(parent, i);
            self.set_parent(k, parent);
        }
    }

    /// Creates the super-root with BOS/EOS sentinels around `body`.
    pub fn root(&mut self, body: NodeId) -> NodeId {
        let bos = self.push(Node {
            kind: NodeKind::Bos,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Kids::EMPTY,
            width: 0,
            leftmost: Terminal::EOF,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        let eos = self.push(Node {
            kind: NodeKind::Eos,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Kids::EMPTY,
            width: 0,
            leftmost: Terminal::EOF,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        let stored = self.intern_kids(&[bos, body, eos]);
        let id = self.push(Node {
            kind: NodeKind::Root,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: stored,
            width: self.width(body),
            leftmost: self.nodes[body.index()].leftmost,
            epoch: self.epoch,
            changed: false,
            free: false,
            deferred: false,
        });
        self.adopt(id);
        id
    }

    /// Replaces the body of a root node (after a reparse).
    pub fn set_root_body(&mut self, root: NodeId, body: NodeId) {
        assert!(matches!(self.kind(root), NodeKind::Root));
        let bos = self.kid_at(root, 0);
        let eos = self.kid_at(root, 2);
        self.set_kids(root, &[bos, body, eos]);
    }

    /// Bottom-up node reuse (the paper's *explicit node retention*, its ref. 25):
    /// if the previous version already contains a production node with
    /// exactly this shape — same production, same children, same recorded
    /// state, built in an earlier epoch and untouched by the current damage
    /// — it is returned instead of allocating a new node, preserving any
    /// annotations tools attached to it. The natural candidate is the
    /// previous parent of the leftmost child.
    pub fn try_reuse_production(
        &mut self,
        prod: ProdId,
        kids: &[NodeId],
        state: ParseState,
    ) -> Option<NodeId> {
        let first = *kids.first()?;
        let candidate = self.nodes[first.index()].parent;
        if candidate.is_none() {
            return None;
        }
        let c = &self.nodes[candidate.index()];
        // Only prior-version nodes are candidates. A `changed` mark does
        // not disqualify: a changed *yield* makes the kid lists differ
        // anyway, and a changed *lookahead* was just revalidated by the
        // reduction that is asking.
        if c.epoch == self.epoch {
            return None;
        }
        match &c.kind {
            NodeKind::Production { prod: p } if *p == prod => {}
            _ => return None,
        }
        if c.state == state && self.kids(candidate) == kids {
            self.retained += 1;
            Some(candidate)
        } else {
            None
        }
    }

    /// Collapses a choice point to one alternative, discarding the others
    /// (dynamic *syntactic* filtering, Section 4.1 — unlike semantic
    /// filters, eliminated interpretations are not retained). The symbol
    /// node is replaced by the chosen child in its parent; returns the
    /// chosen child.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not a symbol node, has no parent, or `index` is
    /// out of range.
    pub fn collapse_choice(&mut self, sym: NodeId, index: usize) -> NodeId {
        assert!(
            matches!(self.kind(sym), NodeKind::Symbol { .. }),
            "collapse_choice target must be a symbol node"
        );
        let chosen = self.kid_at(sym, index);
        let parent = self.nodes[sym.index()].parent;
        assert!(!parent.is_none(), "cannot collapse a detached choice point");
        self.replace_kid(parent, sym, chosen);
        chosen
    }

    /// Re-establishes parent pointers along the surviving tree after a
    /// (re)parse: forks that died during GLR parsing may have been the last
    /// to adopt a shared terminal, leaving its parent pointing into dead
    /// structure and breaking future damage marking. Only freshly built
    /// nodes (and the reused super-root) are visited, so the cost is
    /// proportional to the new structure.
    ///
    /// The walk dedupes via the pooled mark array: a node shared by many
    /// parents (ambiguity packing) is expanded once, not once per path —
    /// the path count of a packed forest is exponential. Its parent pointer
    /// ends up as whichever parent visited it last; any parent chain works
    /// for damage marking because every visited parent is itself reachable
    /// from `root`.
    pub fn refresh_parents(&mut self, root: NodeId) {
        self.gc_gen += 1;
        let gen = self.gc_gen;
        if self.mark_gen.len() < self.nodes.len() {
            self.mark_gen.resize(self.nodes.len(), 0);
        }
        let mut stack = std::mem::take(&mut self.gc_stack);
        stack.clear();
        stack.push(root);
        self.mark_gen[root.index()] = gen;
        while let Some(id) = stack.pop() {
            for i in 0..self.kid_count(id) {
                let k = self.kid_at(id, i);
                self.nodes[k.index()].parent = id;
                self.touch(k);
                if self.nodes[k.index()].epoch == self.epoch && self.mark_gen[k.index()] != gen {
                    self.mark_gen[k.index()] = gen;
                    stack.push(k);
                }
            }
        }
        self.gc_stack = stack;
    }

    // ----- damage marking (Appendix A: process_modifications) -----

    /// Marks a terminal as textually modified and propagates the change flag
    /// to every ancestor (so breakdown during reparse reaches the site).
    pub fn mark_changed(&mut self, id: NodeId) {
        let mut cur = id;
        while !cur.is_none() && !self.nodes[cur.index()].changed {
            self.nodes[cur.index()].changed = true;
            self.dirty_log.push(cur);
            cur = self.nodes[cur.index()].parent;
        }
    }

    /// Marks the nodes whose *following terminal* was modified: walking up
    /// from `prev_terminal` (the last unchanged terminal before the edit),
    /// every ancestor whose yield ends at that terminal — i.e. while the
    /// node remains the last child of its parent — is flagged, because its
    /// reduction consumed the now-changed lookahead. This implements the
    /// rule "mark any N for which yield(N) ∪ the terminal following
    /// yield(N) contains a modified terminal". The terminal itself is left
    /// unmarked: its text did not change and it remains shiftable.
    pub fn mark_following(&mut self, prev_terminal: NodeId) {
        let mut cur = prev_terminal;
        loop {
            let parent = self.nodes[cur.index()].parent;
            if parent.is_none() {
                break;
            }
            // Continue only while `cur` closes its parent's yield.
            if self.kids(parent).last() != Some(&cur) {
                // `parent` contains the following terminal inside its own
                // yield, so the mark_changed walk from the changed terminal
                // covers it; ensure the path to the root is marked so
                // breakdown can reach this region at all.
                self.mark_changed(parent);
                break;
            }
            if !self.nodes[parent.index()].changed {
                self.nodes[parent.index()].changed = true;
                self.dirty_log.push(parent);
            }
            cur = parent;
        }
    }

    /// Whether the node is flagged as changed.
    #[inline]
    pub fn has_changes(&self, id: NodeId) -> bool {
        self.nodes[id.index()].changed
    }

    /// Clears every change flag set since the last call (after a successful
    /// reparse incorporated them).
    pub fn clear_changes(&mut self) {
        for id in std::mem::take(&mut self.dirty_log) {
            self.nodes[id.index()].changed = false;
        }
    }

    /// Nodes currently flagged as changed.
    pub fn dirty(&self) -> &[NodeId] {
        &self.dirty_log
    }

    // ----- incremental reclamation -----

    /// Reclaims every node unreachable from `root`, putting dead slots and
    /// their slab regions on the free lists. Returns the number of nodes
    /// reclaimed.
    ///
    /// **Ids are stable**: live nodes keep their `NodeId`s, so the token
    /// tape, semantic annotations, and any other side table survive
    /// collections untouched — there is no remap step (and no remap table
    /// to allocate). Dead nodes that were parents of live nodes are
    /// disconnected (the live node's parent becomes [`NodeId::NONE`]) so
    /// stale parent chains cannot confuse later damage marking.
    pub fn collect_garbage(&mut self, root: NodeId) -> usize {
        // Retired slots whose pinning snapshots have since been dropped
        // can be recycled now.
        self.drain_deferred();
        // Mark. The generation counter makes the pooled mark array
        // clear-free: a slot is marked iff its entry equals this pass's
        // generation.
        self.gc_gen += 1;
        let gen = self.gc_gen;
        if self.mark_gen.len() < self.nodes.len() {
            self.mark_gen.resize(self.nodes.len(), 0);
        }
        let mut stack = std::mem::take(&mut self.gc_stack);
        stack.clear();
        stack.push(root);
        self.mark_gen[root.index()] = gen;
        while let Some(id) = stack.pop() {
            for i in 0..self.kid_count(id) {
                let k = self.kid_at(id, i);
                if self.mark_gen[k.index()] != gen {
                    self.mark_gen[k.index()] = gen;
                    stack.push(k);
                }
            }
        }
        self.gc_stack = stack;

        // Sweep: recycle dead slots, disconnect live nodes from dead
        // parents. While any snapshot pins a published version, dead slots
        // are *deferred* instead of recycled — their bits stay intact for
        // the pinned versions that saw them alive — and drain once the
        // oldest pin advances past their death stamp.
        let pinned = !self.pins.lock().expect("pin registry poisoned").is_empty();
        let mut reclaimed = 0;
        for i in 0..self.nodes.len() {
            if self.mark_gen[i] == gen {
                let p = self.nodes[i].parent;
                if !p.is_none() && self.mark_gen[p.index()] != gen {
                    self.nodes[i].parent = NodeId::NONE;
                    self.touch(NodeId(i as u32));
                }
            } else if !self.nodes[i].free && !self.nodes[i].deferred {
                let id = NodeId(i as u32);
                if pinned {
                    self.defer_slot(id);
                } else {
                    self.release_slot(id);
                }
                reclaimed += 1;
            }
        }
        let DagArena {
            dirty_log,
            mark_gen,
            ..
        } = self;
        dirty_log.retain(|d| mark_gen[d.index()] == gen);
        self.parent_log.clear();
        self.allocs_since_gc = 0;
        reclaimed
    }

    /// Puts a dead slot on the free list, releasing its slab region and its
    /// lexeme storage.
    fn release_slot(&mut self, id: NodeId) {
        if let Kids::Slab { off, cap, .. } = self.nodes[id.index()].kids {
            self.free_region(off, cap);
        }
        let n = &mut self.nodes[id.index()];
        n.kind = NodeKind::Bos; // drops a terminal's lexeme
        n.kids = Kids::EMPTY;
        n.parent = NodeId::NONE;
        n.state = ParseState::NONE;
        n.width = 0;
        n.changed = false;
        n.free = true;
        n.deferred = false;
        self.free_nodes.push(id);
        self.touch(id);
    }

    /// Retires a dead slot without recycling it: some live snapshot still
    /// pins a version that saw the node alive, so its storage (kind, kids,
    /// lexeme) must survive until the oldest pin advances past the current
    /// version stamp.
    fn defer_slot(&mut self, id: NodeId) {
        self.nodes[id.index()].deferred = true;
        self.deferred_frees.push((self.snap_version, id));
        self.touch(id);
    }

    /// Releases every deferred slot whose death stamp the oldest live pin
    /// has advanced past (all of them when no snapshot is live). This is
    /// the generation-stamp check of the reclamation protocol: a slot that
    /// died at stamp `v` was still visible to every snapshot published at
    /// or before `v`, so it recycles only once the oldest pinned version
    /// exceeds `v`.
    fn drain_deferred(&mut self) {
        let oldest = self
            .pins
            .lock()
            .expect("pin registry poisoned")
            .keys()
            .next()
            .copied();
        let upto = match oldest {
            None => self.deferred_frees.len(),
            Some(o) => self.deferred_frees.partition_point(|&(v, _)| v < o),
        };
        if upto == 0 {
            return;
        }
        let drained: Vec<_> = self.deferred_frees.drain(..upto).collect();
        for (_, id) in drained {
            debug_assert!(self.nodes[id.index()].deferred, "double release");
            self.release_slot(id);
        }
    }

    /// Dead slots currently awaiting reclamation (non-zero only while
    /// snapshots pin old versions).
    pub fn deferred_free_backlog(&self) -> usize {
        self.deferred_frees.len()
    }

    /// Number of live snapshot pins across all published versions.
    pub fn live_pins(&self) -> usize {
        self.pins
            .lock()
            .expect("pin registry poisoned")
            .values()
            .sum()
    }

    /// The version stamp of the most recent publish (0 before the first).
    pub fn published_version(&self) -> u64 {
        self.snap_version
    }

    /// Publishes an immutable snapshot of the current dag.
    ///
    /// Copy-on-write at chunk granularity: only chunks containing slots
    /// mutated since the previous publish are re-materialized; the rest
    /// are shared by reference-count bump. The returned snapshot pins the
    /// new version stamp, holding off slot recycling (see
    /// [`DagArena::collect_garbage`]) until it is dropped.
    pub fn publish(&mut self) -> DagSnapshot {
        self.drain_deferred();
        let n_chunks = self.nodes.len().div_ceil(SNAP_CHUNK);
        for ci in 0..n_chunks {
            let dirty = self.snap_dirty.get(ci).copied().unwrap_or(true);
            if ci < self.snap_chunks.len() {
                if dirty {
                    self.snap_chunks[ci] = Arc::new(self.build_chunk(ci));
                }
            } else {
                let chunk = self.build_chunk(ci);
                self.snap_chunks.push(Arc::new(chunk));
            }
        }
        self.snap_dirty.clear();
        self.snap_dirty.resize(n_chunks, false);
        self.snap_version += 1;
        let pin = PinGuard::new(Arc::clone(&self.pins), self.snap_version);
        DagSnapshot::new(
            self.snap_chunks.clone(),
            self.nodes.len(),
            self.snap_version,
            pin,
        )
    }

    /// Materializes the snapshot image of chunk `ci` from the live arena.
    fn build_chunk(&self, ci: usize) -> SnapChunk {
        let start = ci * SNAP_CHUNK;
        let end = (start + SNAP_CHUNK).min(self.nodes.len());
        let mut nodes = Vec::with_capacity(end - start);
        let mut kid_pool = Vec::new();
        for i in start..end {
            let id = NodeId(i as u32);
            let n = &self.nodes[i];
            let off = kid_pool.len() as u32;
            let ks = self.kids(id);
            let len = ks.len() as u32;
            kid_pool.extend_from_slice(ks);
            nodes.push(SnapNode {
                kind: n.kind.clone(),
                parent: n.parent,
                width: n.width,
                live: !n.free && !n.deferred,
                kids_off: off,
                kids_len: len,
            });
        }
        SnapChunk { nodes, kid_pool }
    }
}

impl DagRead for DagArena {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn kind(&self, id: NodeId) -> &NodeKind {
        DagArena::kind(self, id)
    }

    fn parent(&self, id: NodeId) -> NodeId {
        self.nodes[id.index()].parent
    }

    fn kids(&self, id: NodeId) -> &[NodeId] {
        DagArena::kids(self, id)
    }

    fn width(&self, id: NodeId) -> u32 {
        DagArena::width(self, id)
    }

    fn is_live(&self, id: NodeId) -> bool {
        DagArena::is_live(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: &mut DagArena, s: &str) -> NodeId {
        a.terminal(Terminal::from_index(1), s)
    }

    #[test]
    fn construction_and_widths() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(3), &[x, y]);
        assert_eq!(a.width(p), 2);
        assert_eq!(a.node(x).parent(), p);
        assert_eq!(a.kids(p), &[x, y]);
        assert_eq!(a.state(p), ParseState(3));
        let root = a.root(p);
        assert_eq!(a.width(root), 2);
        assert_eq!(a.kids(root).len(), 3);
        assert!(matches!(a.kind(a.kids(root)[0]), NodeKind::Bos));
    }

    #[test]
    fn wide_kid_lists_spill_to_the_slab() {
        let mut a = DagArena::new();
        let kids: Vec<NodeId> = (0..9).map(|i| t(&mut a, &format!("k{i}"))).collect();
        assert_eq!(a.kid_slab_bytes(), 0, "inline-only so far");
        let p = a.production(ProdId::from_index(1), ParseState(0), &kids);
        assert_eq!(a.kids(p), kids.as_slice());
        assert_eq!(a.kid_count(p), 9);
        assert!(a.kid_slab_bytes() >= 9 * 4, "wide list lives in the slab");
        for &k in &kids {
            assert_eq!(a.node(k).parent(), p);
        }
    }

    #[test]
    fn incremental_growth_spills_and_relocates() {
        let mut a = DagArena::new();
        let e0 = t(&mut a, "e0");
        let seq = a.sequence(NonTerminal::from_index(1), ParseState(0), &[e0]);
        let mut expect = vec![e0];
        // Push through the inline→slab spill (at 4) and one region
        // relocation (4→8), checking contents each step.
        for i in 1..7 {
            let e = t(&mut a, &format!("e{i}"));
            a.seq_append(seq, &[e]);
            expect.push(e);
            assert_eq!(a.kids(seq), expect.as_slice(), "after push {i}");
        }
        assert_eq!(a.width(seq), 7);
    }

    #[test]
    fn symbol_nodes_hold_alternatives() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[x]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        a.add_choice(sym, p2); // idempotent
        assert_eq!(a.kids(sym).len(), 2);
        assert_eq!(a.width(sym), 1);
        assert_eq!(a.state(sym), ParseState::MULTI);
    }

    #[test]
    #[should_panic(expected = "same yield")]
    fn add_choice_rejects_width_mismatch() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let z = t(&mut a, "z");
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[y, z]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
    }

    #[test]
    fn epoch_gates_sequence_mutation() {
        let mut a = DagArena::new();
        let e1 = t(&mut a, "a");
        let seq = a.sequence(NonTerminal::from_index(1), ParseState(0), &[e1]);
        let e2 = t(&mut a, "b");
        a.seq_append(seq, &[e2]);
        assert_eq!(a.width(seq), 2);
        a.begin_epoch();
        assert!(!a.is_current_epoch(seq));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a2 = a.clone();
            let e3 = a2.terminal(Terminal::from_index(1), "c");
            a2.seq_append(seq, &[e3]);
        }));
        assert!(result.is_err(), "appending across epochs must panic");
    }

    #[test]
    fn mark_changed_walks_to_root() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x, y]);
        let root = a.root(p);
        a.mark_changed(x);
        assert!(a.has_changes(x));
        assert!(a.has_changes(p));
        assert!(a.has_changes(root));
        assert!(!a.has_changes(y));
        a.clear_changes();
        assert!(!a.has_changes(x) && !a.has_changes(p) && !a.has_changes(root));
        assert!(a.dirty().is_empty());
    }

    #[test]
    fn mark_following_marks_right_spine() {
        // p = (q = (x y) z); editing after y's subtree: nodes whose yield
        // ends at y are q's... no: y ends q's yield. Ancestors of y that end
        // at y: just q's child y and q itself ends with y? q's kids [x, y] so
        // y is last child: chain = y, q. Then z follows.
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let q = a.production(ProdId::from_index(1), ParseState(0), &[x, y]);
        let z = t(&mut a, "z");
        let p = a.production(ProdId::from_index(2), ParseState(0), &[q, z]);
        let _root = a.root(p);
        a.mark_following(y);
        assert!(!a.has_changes(y), "the terminal itself is still shiftable");
        assert!(a.has_changes(q), "q's reduction consumed the old lookahead");
        assert!(
            a.has_changes(p),
            "ancestor containing the boundary is marked"
        );
        assert!(!a.has_changes(x));
        assert!(!a.has_changes(z));
    }

    #[test]
    fn garbage_collection_recycles_without_moving_ids() {
        let mut a = DagArena::new();
        let dead = t(&mut a, "dead");
        let x = t(&mut a, "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        let before = a.len();
        let reclaimed = a.collect_garbage(root);
        assert_eq!(reclaimed, 1, "only the detached terminal dies");
        assert_eq!(a.len(), before, "slots are recycled, not compacted");
        assert_eq!(a.in_use(), before - 1);
        // Ids are stable: the same handles still resolve.
        assert!(matches!(a.kind(root), NodeKind::Root));
        assert_eq!(a.kids(root)[1], p);
        assert_eq!(a.kids(p), &[x]);
        assert_eq!(a.node(x).parent(), p);
        // The next allocation recycles the dead slot instead of growing.
        let fresh_before = a.fresh_node_slots();
        let t2 = t(&mut a, "recycled");
        assert_eq!(t2, dead, "free-listed slot is reused");
        assert_eq!(a.fresh_node_slots(), fresh_before);
        assert_eq!(a.recycled_node_slots(), 1);
        assert_eq!(a.len(), before);
    }

    #[test]
    fn gc_disconnects_live_nodes_from_dead_parents() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        // An old parent that will die, still claiming x.
        let stale = a.production(ProdId::from_index(7), ParseState(0), &[x]);
        // The surviving tree adopts x afterwards... but then parent(x) is the
        // live p. Make the *stale* node the last adopter instead.
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        a.nodes[x.index()].parent = stale; // simulate a dead fork's adoption
        a.collect_garbage(root);
        assert!(
            a.node(x).parent().is_none(),
            "dead parent pointer must be cleared, not left dangling"
        );
        let _ = p;
    }

    #[test]
    fn gc_recycles_slab_regions() {
        let mut a = DagArena::new();
        let kids: Vec<NodeId> = (0..8).map(|i| t(&mut a, &format!("k{i}"))).collect();
        let wide = a.production(ProdId::from_index(1), ParseState(0), &kids);
        let keep = t(&mut a, "keep");
        let p = a.production(ProdId::from_index(2), ParseState(0), &[keep]);
        let root = a.root(p);
        let slab_high = a.kid_slab_bytes();
        a.collect_garbage(root); // `wide` and its kids die
        let _ = wide;
        // A new wide node reuses the freed region: the slab does not grow.
        let kids2: Vec<NodeId> = (0..8).map(|i| t(&mut a, &format!("n{i}"))).collect();
        let wide2 = a.production(ProdId::from_index(3), ParseState(0), &kids2);
        assert_eq!(a.kids(wide2), kids2.as_slice());
        assert_eq!(a.kid_slab_bytes(), slab_high, "region recycled");
    }

    #[test]
    fn should_collect_tracks_allocation_budget() {
        let mut a = DagArena::new();
        assert!(!a.should_collect());
        let mut last = NodeId::NONE;
        for i in 0..64 {
            last = t(&mut a, &format!("t{i}"));
        }
        assert!(a.should_collect(), "64 allocs on a small arena trigger");
        let root = a.root(last);
        a.collect_garbage(root);
        assert!(!a.should_collect(), "counter resets after a collection");
    }

    #[test]
    fn replace_kid_patches_in_place() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x, y]);
        let x2 = t(&mut a, "x");
        assert_eq!(a.replace_kid(p, x, x2), 1);
        assert_eq!(a.kids(p), &[x2, y]);
        assert_eq!(a.node(x2).parent(), p);
        assert_eq!(a.replace_kid(p, x, x2), 0, "old id no longer present");
    }

    #[test]
    fn set_root_body_swaps_body_keeps_sentinels() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let p1 = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p1);
        let y = t(&mut a, "y");
        let p2 = a.production(ProdId::from_index(2), ParseState(0), &[y]);
        let bos = a.kids(root)[0];
        a.set_root_body(root, p2);
        assert_eq!(a.kids(root)[0], bos);
        assert_eq!(a.kids(root)[1], p2);
        assert_eq!(a.width(root), 1);
    }
}
