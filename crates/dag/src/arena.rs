//! The node arena: construction, adoption, damage marking, and compaction.

use crate::node::{Node, NodeId, NodeKind, ParseState};
use std::collections::HashMap;
use wg_grammar::{NonTerminal, ProdId, Terminal};

/// Owning store for all nodes of (successive versions of) one parse dag.
///
/// Reparsing builds new nodes into the same arena while the previous
/// version's structure stays intact — exactly the property the incremental
/// parser needs to traverse the prior version while constructing the new one
/// (the paper's self-versioning document substrate). Call
/// [`DagArena::collect_garbage`] between analyses to drop unreachable
/// versions.
#[derive(Debug, Clone, Default)]
pub struct DagArena {
    nodes: Vec<Node>,
    epoch: u32,
    /// Nodes flagged by the current damage-marking pass (for cheap clearing).
    dirty_log: Vec<NodeId>,
    /// Old nodes retained by bottom-up reuse this epoch (diagnostics).
    retained: usize,
    /// Parent pointers of prior-epoch nodes overwritten this epoch, so a
    /// *failed* parse attempt can be rolled back: the old tree's damage
    /// marking depends on its parent chains staying intact.
    parent_log: Vec<(NodeId, NodeId)>,
}

impl DagArena {
    /// An empty arena at epoch 0.
    pub fn new() -> DagArena {
        DagArena::default()
    }

    /// Number of live node slots (including unreachable old versions until
    /// garbage collection).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current parse generation.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Starts a new parse generation (nodes created from here on can be
    /// mutated in place by sequence accumulation; older nodes cannot).
    pub fn begin_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.retained = 0;
        self.parent_log.clear();
        self.epoch
    }

    /// Undoes every parent-pointer overwrite of prior-epoch nodes made this
    /// epoch. Call when a parse attempt fails and the previous tree stays
    /// authoritative; the fresh nodes it built become garbage, but the old
    /// tree's parent chains (and thus future damage marking) are restored.
    pub fn rollback_parents(&mut self) {
        for (node, old_parent) in std::mem::take(&mut self.parent_log).into_iter().rev() {
            self.nodes[node.index()].parent = old_parent;
        }
    }

    fn set_parent(&mut self, kid: NodeId, parent: NodeId) {
        if self.nodes[kid.index()].epoch != self.epoch && self.nodes[kid.index()].parent != parent {
            self.parent_log.push((kid, self.nodes[kid.index()].parent));
        }
        self.nodes[kid.index()].parent = parent;
    }

    /// How many previous-version nodes bottom-up reuse retained this epoch
    /// (the paper's explicit node retention, its ref. 25).
    pub fn retained_this_epoch(&self) -> usize {
        self.retained
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is [`NodeId::NONE`] or stale after garbage collection.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Shorthand for `node(id).kind()`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Shorthand for `node(id).kids()`.
    #[inline]
    pub fn kids(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].kids
    }

    /// Shorthand for `node(id).state()`.
    #[inline]
    pub fn state(&self, id: NodeId) -> ParseState {
        self.nodes[id.index()].state
    }

    /// Shorthand for `node(id).width()`.
    #[inline]
    pub fn width(&self, id: NodeId) -> u32 {
        self.nodes[id.index()].width
    }

    /// Whether the node was created in the current epoch.
    #[inline]
    pub fn is_current_epoch(&self, id: NodeId) -> bool {
        self.nodes[id.index()].epoch == self.epoch
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Leading terminal over a kid list (EOF placeholder when null-yield).
    fn leftmost_of(&self, kids: &[NodeId]) -> Terminal {
        kids.iter()
            .find(|&&k| self.width(k) > 0)
            .map(|&k| self.nodes[k.index()].leftmost)
            .unwrap_or(Terminal::EOF)
    }

    /// Creates a token node.
    pub fn terminal(&mut self, term: Terminal, lexeme: &str) -> NodeId {
        self.push(Node {
            kind: NodeKind::Terminal {
                term,
                lexeme: lexeme.to_string(),
            },
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Vec::new(),
            width: 1,
            leftmost: term,
            epoch: self.epoch,
            changed: false,
        })
    }

    /// Creates a production node over `kids` (adopting them), recording the
    /// parse state preceding the nonterminal (Appendix A's `get_node`).
    pub fn production(&mut self, prod: ProdId, state: ParseState, kids: Vec<NodeId>) -> NodeId {
        let width = kids.iter().map(|k| self.width(*k)).sum();
        let leftmost = self.leftmost_of(&kids);
        let id = self.push(Node {
            kind: NodeKind::Production { prod },
            state,
            parent: NodeId::NONE,
            kids,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
        });
        self.adopt(id);
        id
    }

    /// Creates a symbol (choice) node with one initial interpretation.
    /// Symbol nodes have no deterministic state by definition (Appendix A).
    pub fn symbol(&mut self, symbol: NonTerminal, first: NodeId) -> NodeId {
        let width = self.width(first);
        let leftmost = self.nodes[first.index()].leftmost;
        let id = self.push(Node {
            kind: NodeKind::Symbol { symbol },
            state: ParseState::MULTI,
            parent: NodeId::NONE,
            kids: vec![first],
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
        });
        self.set_parent(first, id);
        id
    }

    /// Adds an alternative interpretation to a symbol node.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not a symbol node or the widths disagree
    /// (alternatives must share their yield).
    pub fn add_choice(&mut self, sym: NodeId, alt: NodeId) {
        assert!(
            matches!(self.kind(sym), NodeKind::Symbol { .. }),
            "add_choice target must be a symbol node"
        );
        assert_eq!(
            self.width(sym),
            self.width(alt),
            "alternatives must cover the same yield"
        );
        if !self.nodes[sym.index()].kids.contains(&alt) {
            self.nodes[sym.index()].kids.push(alt);
            self.set_parent(alt, sym);
        }
    }

    /// Creates a sequence node (complete or prefix instance of a declared
    /// associative sequence).
    pub fn sequence(
        &mut self,
        symbol: NonTerminal,
        state: ParseState,
        kids: Vec<NodeId>,
    ) -> NodeId {
        let width = kids.iter().map(|k| self.width(*k)).sum();
        let leftmost = self.leftmost_of(&kids);
        let id = self.push(Node {
            kind: NodeKind::Sequence { symbol },
            state,
            parent: NodeId::NONE,
            kids,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
        });
        self.adopt(id);
        id
    }

    /// Creates an internal sequence run.
    pub fn seq_run(&mut self, symbol: NonTerminal, state: ParseState, kids: Vec<NodeId>) -> NodeId {
        let width = kids.iter().map(|k| self.width(*k)).sum();
        let leftmost = self.leftmost_of(&kids);
        let id = self.push(Node {
            kind: NodeKind::SeqRun { symbol },
            state,
            parent: NodeId::NONE,
            kids,
            width,
            leftmost,
            epoch: self.epoch,
            changed: false,
        });
        self.adopt(id);
        id
    }

    /// Appends steps to a sequence node created in the *current* epoch
    /// (in-place accumulation during parsing).
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a sequence node or was created in an earlier
    /// epoch (older nodes may be shared with the previous version and must
    /// not be mutated).
    pub fn seq_append(&mut self, seq: NodeId, steps: &[NodeId]) {
        assert!(
            matches!(self.kind(seq), NodeKind::Sequence { .. }),
            "seq_append target must be a sequence node"
        );
        assert!(
            self.is_current_epoch(seq),
            "only nodes of the current epoch may be mutated"
        );
        let extra: u32 = steps.iter().map(|k| self.width(*k)).sum();
        for &s in steps {
            self.set_parent(s, seq);
            self.nodes[seq.index()].kids.push(s);
        }
        if self.nodes[seq.index()].width == 0 && extra > 0 {
            self.nodes[seq.index()].leftmost = self.leftmost_of(steps);
        }
        self.nodes[seq.index()].width += extra;
    }

    /// Converts a `Production` fallback node (built over a lowered sequence
    /// production while the parse was non-deterministic) into a proper
    /// [`NodeKind::Sequence`] with the given preceding state. Used by the
    /// rebalancing post-pass when it canonicalizes fallback chains.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a production node.
    pub fn convert_to_sequence(&mut self, id: NodeId, symbol: NonTerminal, state: ParseState) {
        assert!(
            matches!(self.kind(id), NodeKind::Production { .. }),
            "convert_to_sequence expects a production fallback"
        );
        self.nodes[id.index()].kind = NodeKind::Sequence { symbol };
        self.nodes[id.index()].state = state;
    }

    /// Replaces the children of a node (used by the rebalancing and
    /// unsharing post-passes). Widths are recomputed; kids are adopted.
    pub fn set_kids(&mut self, id: NodeId, kids: Vec<NodeId>) {
        let width = kids.iter().map(|k| self.width(*k)).sum();
        let leftmost = self.leftmost_of(&kids);
        self.nodes[id.index()].kids = kids;
        self.nodes[id.index()].width = width;
        self.nodes[id.index()].leftmost = leftmost;
        self.adopt(id);
    }

    fn adopt(&mut self, parent: NodeId) {
        let kids = self.nodes[parent.index()].kids.clone();
        for k in kids {
            self.set_parent(k, parent);
        }
    }

    /// Creates the super-root with BOS/EOS sentinels around `body`.
    pub fn root(&mut self, body: NodeId) -> NodeId {
        let bos = self.push(Node {
            kind: NodeKind::Bos,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Vec::new(),
            width: 0,
            leftmost: Terminal::EOF,
            epoch: self.epoch,
            changed: false,
        });
        let eos = self.push(Node {
            kind: NodeKind::Eos,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: Vec::new(),
            width: 0,
            leftmost: Terminal::EOF,
            epoch: self.epoch,
            changed: false,
        });
        let id = self.push(Node {
            kind: NodeKind::Root,
            state: ParseState::NONE,
            parent: NodeId::NONE,
            kids: vec![bos, body, eos],
            width: self.width(body),
            leftmost: self.nodes[body.index()].leftmost,
            epoch: self.epoch,
            changed: false,
        });
        self.adopt(id);
        id
    }

    /// Replaces the body of a root node (after a reparse).
    pub fn set_root_body(&mut self, root: NodeId, body: NodeId) {
        assert!(matches!(self.kind(root), NodeKind::Root));
        let bos = self.nodes[root.index()].kids[0];
        let eos = self.nodes[root.index()].kids[2];
        self.set_kids(root, vec![bos, body, eos]);
    }

    /// Bottom-up node reuse (the paper's *explicit node retention*, its ref. 25):
    /// if the previous version already contains a production node with
    /// exactly this shape — same production, same children, same recorded
    /// state, built in an earlier epoch and untouched by the current damage
    /// — it is returned instead of allocating a new node, preserving any
    /// annotations tools attached to it. The natural candidate is the
    /// previous parent of the leftmost child.
    pub fn try_reuse_production(
        &mut self,
        prod: ProdId,
        kids: &[NodeId],
        state: ParseState,
    ) -> Option<NodeId> {
        let first = *kids.first()?;
        let candidate = self.nodes[first.index()].parent;
        if candidate.is_none() {
            return None;
        }
        let c = &self.nodes[candidate.index()];
        // Only prior-version nodes are candidates. A `changed` mark does
        // not disqualify: a changed *yield* makes the kid lists differ
        // anyway, and a changed *lookahead* was just revalidated by the
        // reduction that is asking.
        if c.epoch == self.epoch {
            return None;
        }
        match &c.kind {
            NodeKind::Production { prod: p } if *p == prod => {}
            _ => return None,
        }
        if c.state == state && c.kids == kids {
            self.retained += 1;
            Some(candidate)
        } else {
            None
        }
    }

    /// Collapses a choice point to one alternative, discarding the others
    /// (dynamic *syntactic* filtering, Section 4.1 — unlike semantic
    /// filters, eliminated interpretations are not retained). The symbol
    /// node is replaced by the chosen child in its parent; returns the
    /// chosen child.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not a symbol node, has no parent, or `index` is
    /// out of range.
    pub fn collapse_choice(&mut self, sym: NodeId, index: usize) -> NodeId {
        assert!(
            matches!(self.kind(sym), NodeKind::Symbol { .. }),
            "collapse_choice target must be a symbol node"
        );
        let chosen = self.nodes[sym.index()].kids[index];
        let parent = self.nodes[sym.index()].parent;
        assert!(!parent.is_none(), "cannot collapse a detached choice point");
        let new_kids: Vec<NodeId> = self.nodes[parent.index()]
            .kids
            .iter()
            .map(|&k| if k == sym { chosen } else { k })
            .collect();
        self.set_kids(parent, new_kids);
        chosen
    }

    /// Re-establishes parent pointers along the surviving tree after a
    /// (re)parse: forks that died during GLR parsing may have been the last
    /// to adopt a shared terminal, leaving its parent pointing into dead
    /// structure and breaking future damage marking. Only freshly built
    /// nodes (and the reused super-root) are visited, so the cost is
    /// proportional to the new structure.
    pub fn refresh_parents(&mut self, root: NodeId) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            for i in 0..self.nodes[id.index()].kids.len() {
                let k = self.nodes[id.index()].kids[i];
                self.nodes[k.index()].parent = id;
                if self.nodes[k.index()].epoch == self.epoch {
                    stack.push(k);
                }
            }
        }
    }

    // ----- damage marking (Appendix A: process_modifications) -----

    /// Marks a terminal as textually modified and propagates the change flag
    /// to every ancestor (so breakdown during reparse reaches the site).
    pub fn mark_changed(&mut self, id: NodeId) {
        let mut cur = id;
        while !cur.is_none() && !self.nodes[cur.index()].changed {
            self.nodes[cur.index()].changed = true;
            self.dirty_log.push(cur);
            cur = self.nodes[cur.index()].parent;
        }
    }

    /// Marks the nodes whose *following terminal* was modified: walking up
    /// from `prev_terminal` (the last unchanged terminal before the edit),
    /// every ancestor whose yield ends at that terminal — i.e. while the
    /// node remains the last child of its parent — is flagged, because its
    /// reduction consumed the now-changed lookahead. This implements the
    /// rule "mark any N for which yield(N) ∪ the terminal following
    /// yield(N) contains a modified terminal". The terminal itself is left
    /// unmarked: its text did not change and it remains shiftable.
    pub fn mark_following(&mut self, prev_terminal: NodeId) {
        let mut cur = prev_terminal;
        loop {
            let parent = self.nodes[cur.index()].parent;
            if parent.is_none() {
                break;
            }
            // Continue only while `cur` closes its parent's yield.
            if self.nodes[parent.index()].kids.last() != Some(&cur) {
                // `parent` contains the following terminal inside its own
                // yield, so the mark_changed walk from the changed terminal
                // covers it; ensure the path to the root is marked so
                // breakdown can reach this region at all.
                self.mark_changed(parent);
                break;
            }
            if !self.nodes[parent.index()].changed {
                self.nodes[parent.index()].changed = true;
                self.dirty_log.push(parent);
            }
            cur = parent;
        }
    }

    /// Whether the node is flagged as changed.
    #[inline]
    pub fn has_changes(&self, id: NodeId) -> bool {
        self.nodes[id.index()].changed
    }

    /// Clears every change flag set since the last call (after a successful
    /// reparse incorporated them).
    pub fn clear_changes(&mut self) {
        for id in std::mem::take(&mut self.dirty_log) {
            self.nodes[id.index()].changed = false;
        }
    }

    /// Nodes currently flagged as changed.
    pub fn dirty(&self) -> &[NodeId] {
        &self.dirty_log
    }

    // ----- compaction -----

    /// Drops every node unreachable from `root`, compacting storage.
    /// Returns the new id of `root`; all other outstanding ids are
    /// invalidated (a remapping table is returned for callers holding ids).
    pub fn collect_garbage(&mut self, root: NodeId) -> (NodeId, HashMap<NodeId, NodeId>) {
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        let mut order: Vec<NodeId> = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if map.contains_key(&id) {
                continue;
            }
            map.insert(id, NodeId(order.len() as u32));
            order.push(id);
            for &k in &self.nodes[id.index()].kids {
                stack.push(k);
            }
        }
        let mut nodes = Vec::with_capacity(order.len());
        for &old in &order {
            let mut n = self.nodes[old.index()].clone();
            n.kids = n.kids.iter().map(|k| map[k]).collect();
            n.parent = map.get(&n.parent).copied().unwrap_or(NodeId::NONE);
            nodes.push(n);
        }
        self.nodes = nodes;
        self.dirty_log.retain(|d| map.contains_key(d));
        for d in &mut self.dirty_log {
            *d = map[d];
        }
        (map[&root], map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: &mut DagArena, s: &str) -> NodeId {
        a.terminal(Terminal::from_index(1), s)
    }

    #[test]
    fn construction_and_widths() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(3), vec![x, y]);
        assert_eq!(a.width(p), 2);
        assert_eq!(a.node(x).parent(), p);
        assert_eq!(a.kids(p), &[x, y]);
        assert_eq!(a.state(p), ParseState(3));
        let root = a.root(p);
        assert_eq!(a.width(root), 2);
        assert_eq!(a.kids(root).len(), 3);
        assert!(matches!(a.kind(a.kids(root)[0]), NodeKind::Bos));
    }

    #[test]
    fn symbol_nodes_hold_alternatives() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, vec![x]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, vec![x]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        a.add_choice(sym, p2); // idempotent
        assert_eq!(a.kids(sym).len(), 2);
        assert_eq!(a.width(sym), 1);
        assert_eq!(a.state(sym), ParseState::MULTI);
    }

    #[test]
    #[should_panic(expected = "same yield")]
    fn add_choice_rejects_width_mismatch() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, vec![x]);
        let z = t(&mut a, "z");
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, vec![y, z]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
    }

    #[test]
    fn epoch_gates_sequence_mutation() {
        let mut a = DagArena::new();
        let e1 = t(&mut a, "a");
        let seq = a.sequence(NonTerminal::from_index(1), ParseState(0), vec![e1]);
        let e2 = t(&mut a, "b");
        a.seq_append(seq, &[e2]);
        assert_eq!(a.width(seq), 2);
        a.begin_epoch();
        assert!(!a.is_current_epoch(seq));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut a2 = a.clone();
            let e3 = a2.terminal(Terminal::from_index(1), "c");
            a2.seq_append(seq, &[e3]);
        }));
        assert!(result.is_err(), "appending across epochs must panic");
    }

    #[test]
    fn mark_changed_walks_to_root() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let p = a.production(ProdId::from_index(1), ParseState(0), vec![x, y]);
        let root = a.root(p);
        a.mark_changed(x);
        assert!(a.has_changes(x));
        assert!(a.has_changes(p));
        assert!(a.has_changes(root));
        assert!(!a.has_changes(y));
        a.clear_changes();
        assert!(!a.has_changes(x) && !a.has_changes(p) && !a.has_changes(root));
        assert!(a.dirty().is_empty());
    }

    #[test]
    fn mark_following_marks_right_spine() {
        // p = (q = (x y) z); editing after y's subtree: nodes whose yield
        // ends at y are q's... no: y ends q's yield. Ancestors of y that end
        // at y: just q's child y and q itself ends with y? q's kids [x, y] so
        // y is last child: chain = y, q. Then z follows.
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let y = t(&mut a, "y");
        let q = a.production(ProdId::from_index(1), ParseState(0), vec![x, y]);
        let z = t(&mut a, "z");
        let p = a.production(ProdId::from_index(2), ParseState(0), vec![q, z]);
        let _root = a.root(p);
        a.mark_following(y);
        assert!(!a.has_changes(y), "the terminal itself is still shiftable");
        assert!(a.has_changes(q), "q's reduction consumed the old lookahead");
        assert!(
            a.has_changes(p),
            "ancestor containing the boundary is marked"
        );
        assert!(!a.has_changes(x));
        assert!(!a.has_changes(z));
    }

    #[test]
    fn garbage_collection_compacts_and_remaps() {
        let mut a = DagArena::new();
        let dead = t(&mut a, "dead");
        let x = t(&mut a, "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), vec![x]);
        let root = a.root(p);
        let before = a.len();
        let (new_root, map) = a.collect_garbage(root);
        assert!(a.len() < before);
        assert!(!map.contains_key(&dead));
        assert!(matches!(a.kind(new_root), NodeKind::Root));
        // Structure survives: root -> [bos, p, eos] -> x
        let body = a.kids(new_root)[1];
        assert!(matches!(a.kind(body), NodeKind::Production { .. }));
        let x2 = a.kids(body)[0];
        assert!(matches!(a.kind(x2), NodeKind::Terminal { .. }));
        assert_eq!(a.node(x2).parent(), body);
    }

    #[test]
    fn set_root_body_swaps_body_keeps_sentinels() {
        let mut a = DagArena::new();
        let x = t(&mut a, "x");
        let p1 = a.production(ProdId::from_index(1), ParseState(0), vec![x]);
        let root = a.root(p1);
        let y = t(&mut a, "y");
        let p2 = a.production(ProdId::from_index(2), ParseState(0), vec![y]);
        let bos = a.kids(root)[0];
        a.set_root_body(root, p2);
        assert_eq!(a.kids(root)[0], bos);
        assert_eq!(a.kids(root)[1], p2);
        assert_eq!(a.width(root), 1);
    }
}
