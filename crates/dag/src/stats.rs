//! Space accounting for the paper's evaluation (Table 1, Figure 4,
//! Section 5's 5% state-word comparison).

use crate::arena::DagArena;
use crate::node::{NodeId, NodeKind};
use std::collections::HashSet;

/// Space statistics of one abstract parse dag.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DagStats {
    /// Unique nodes reachable from the root (shared nodes counted once).
    pub dag_nodes: usize,
    /// Nodes of the embedded tree obtained by keeping one alternative per
    /// choice point (the symbol node itself is elided, as the paper does
    /// once disambiguation completes).
    pub tree_nodes: usize,
    /// Terminal nodes (tokens).
    pub terminals: usize,
    /// Production nodes.
    pub productions: usize,
    /// Symbol (choice) nodes.
    pub choice_points: usize,
    /// Total alternatives across all choice points.
    pub alternatives: usize,
    /// Sequence containers (tops and runs).
    pub sequence_nodes: usize,
    /// Widest ambiguous region, in tokens.
    pub max_ambiguous_width: usize,
    /// Estimated dag bytes, including the per-node parse-state word.
    pub bytes_with_states: usize,
    /// Estimated bytes without the state word (the sentential-form
    /// baseline of Section 5: ~5% smaller).
    pub bytes_without_states: usize,
}

impl DagStats {
    /// Computes statistics for the dag under `root`, selecting the first
    /// alternative at every choice point for the embedded tree.
    pub fn compute(arena: &DagArena, root: NodeId) -> DagStats {
        Self::compute_with(arena, root, |_| 0)
    }

    /// As [`DagStats::compute`], with an explicit alternative selector
    /// (e.g. the outcome of semantic disambiguation).
    pub fn compute_with(
        arena: &DagArena,
        root: NodeId,
        select: impl Fn(NodeId) -> usize,
    ) -> DagStats {
        let mut s = DagStats::default();

        // Unique reachable nodes.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            let n = arena.node(id);
            match n.kind() {
                NodeKind::Terminal { lexeme, .. } => {
                    s.terminals += 1;
                    s.bytes_with_states += lexeme.len();
                }
                NodeKind::Production { .. } => s.productions += 1,
                NodeKind::Symbol { .. } => {
                    s.choice_points += 1;
                    s.alternatives += n.kid_count();
                    s.max_ambiguous_width = s.max_ambiguous_width.max(n.width() as usize);
                }
                NodeKind::Sequence { .. } | NodeKind::SeqRun { .. } => s.sequence_nodes += 1,
                NodeKind::Root | NodeKind::Bos | NodeKind::Eos => {}
            }
            // Per-node cost model matching the real `Node` layout: kind
            // (tag + inline String header), parent, width, epoch, flags,
            // inline kid buffer / slab window + slab slots. The parse-state
            // word is accounted separately.
            s.bytes_with_states += 72 + 4 * n.kid_count();
            stack.extend_from_slice(arena.kids(id));
        }
        s.dag_nodes = seen.len();
        s.bytes_without_states = s.bytes_with_states.saturating_sub(4 * s.dag_nodes);
        s.bytes_with_states += 0; // header already includes the 4-byte state
        s.tree_nodes = tree_count(arena, root, &select);
        s
    }

    /// Percentage increase of the dag over the embedded (disambiguated)
    /// parse tree — the paper's Table 1 / Figure 4 metric.
    pub fn space_overhead_percent(&self) -> f64 {
        if self.tree_nodes == 0 {
            return 0.0;
        }
        100.0 * (self.dag_nodes as f64 - self.tree_nodes as f64) / self.tree_nodes as f64
    }

    /// Percentage increase of recording parse states in every node — the
    /// Section 5 comparison against sentential-form parsing (~5%).
    pub fn state_overhead_percent(&self) -> f64 {
        if self.bytes_without_states == 0 {
            return 0.0;
        }
        100.0 * (self.bytes_with_states as f64 - self.bytes_without_states as f64)
            / self.bytes_without_states as f64
    }
}

/// Counts the nodes of the embedded tree: at choice points, descend into the
/// selected alternative only and do not count the symbol node itself.
fn tree_count(arena: &DagArena, node: NodeId, select: &impl Fn(NodeId) -> usize) -> usize {
    match arena.kind(node) {
        NodeKind::Symbol { .. } => {
            let kids = arena.kids(node);
            let chosen = kids[select(node).min(kids.len() - 1)];
            tree_count(arena, chosen, select)
        }
        _ => {
            1 + arena
                .kids(node)
                .iter()
                .map(|&k| tree_count(arena, k, select))
                .sum::<usize>()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ParseState;
    use wg_grammar::{NonTerminal, ProdId, Terminal};

    /// Builds: root -> P0(a, sym{P1(b), P2(b)}, c) — one two-way local
    /// ambiguity over a shared terminal.
    fn ambiguous_dag() -> (DagArena, NodeId) {
        let mut a = DagArena::new();
        let ta = a.terminal(Terminal::from_index(1), "a");
        let tb = a.terminal(Terminal::from_index(1), "b");
        let tc = a.terminal(Terminal::from_index(1), "c");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[tb]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[tb]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        let top = a.production(ProdId::from_index(3), ParseState(0), &[ta, sym, tc]);
        let root = a.root(top);
        (a, root)
    }

    #[test]
    fn counts_are_exact() {
        let (a, root) = ambiguous_dag();
        let s = DagStats::compute(&a, root);
        // Unique: root, bos, eos, top, a, c, sym, p1, p2, b = 10
        assert_eq!(s.dag_nodes, 10);
        assert_eq!(s.terminals, 3);
        assert_eq!(s.productions, 3);
        assert_eq!(s.choice_points, 1);
        assert_eq!(s.alternatives, 2);
        assert_eq!(s.max_ambiguous_width, 1);
        // Embedded tree: root, bos, eos, top, a, c, p1, b = 8
        assert_eq!(s.tree_nodes, 8);
    }

    #[test]
    fn overhead_percentages() {
        let (a, root) = ambiguous_dag();
        let s = DagStats::compute(&a, root);
        let ov = s.space_overhead_percent();
        assert!((ov - 25.0).abs() < 1e-9, "(10-8)/8 = 25%, got {ov}");
        let st = s.state_overhead_percent();
        assert!(st > 5.0 && st < 15.0, "state word ≈ 4/44 bytes: {st}");
    }

    #[test]
    fn unambiguous_dag_has_zero_overhead() {
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        let s = DagStats::compute(&a, root);
        assert_eq!(s.dag_nodes, s.tree_nodes);
        assert_eq!(s.space_overhead_percent(), 0.0);
        assert_eq!(s.choice_points, 0);
    }

    #[test]
    fn selector_changes_embedded_tree() {
        // Make alternative 2 bigger than alternative 1.
        let mut a = DagArena::new();
        let tb = a.terminal(Terminal::from_index(1), "b");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[tb]);
        let inner = a.production(ProdId::from_index(4), ParseState::MULTI, &[tb]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[inner]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        let root = a.root(sym);
        let s0 = DagStats::compute_with(&a, root, |_| 0);
        let s1 = DagStats::compute_with(&a, root, |_| 1);
        assert_eq!(s1.tree_nodes, s0.tree_nodes + 1);
        assert_eq!(s1.dag_nodes, s0.dag_nodes);
    }
}
