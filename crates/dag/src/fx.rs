//! A fast, non-cryptographic hasher for the hot incremental-parse paths.
//!
//! The standard library's default hasher (SipHash 1-3) is keyed and
//! DoS-resistant, but costs tens of cycles per small key — measurable when
//! the merge tables, the proxy forward map, and the input stream's
//! replacement map are probed once per reduction. Keys on those paths are
//! arena indices and small integers produced by the parser itself, never
//! attacker-chosen, so a multiply-rotate hash in the Firefox `FxHasher`
//! family is both safe and several times faster.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio mix, the `FxHasher` seed).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A multiply-rotate streaming hasher over machine words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`std::collections::HashMap`] using [`FxHasher`]. Construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] using [`FxHasher`]. Construct with
/// `FxHashSet::default()`.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (for open-addressed tables that
/// manage their own buckets).
#[inline]
pub fn fx_hash(value: impl std::hash::Hash) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        assert_eq!(fx_hash(42u32), fx_hash(42u32));
        assert_ne!(fx_hash(42u32), fx_hash(43u32));
        // Sequential keys must not collapse onto a few buckets.
        let mut low_bits: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0u32..256 {
            low_bits.insert(fx_hash(i) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn byte_stream_matches_word_writes_only_in_length() {
        // Same bytes hashed via `write` are deterministic.
        let mut a = FxHasher::default();
        a.write(b"hello world, incremental parser");
        let mut b = FxHasher::default();
        b.write(b"hello world, incremental parser");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, incremental parsed");
        assert_ne!(a.finish(), c.finish());
    }
}
