//! Traversal utilities: yields, pretty-printing, structural comparison.

use crate::arena::DagArena;
use crate::node::{NodeId, NodeKind};
use wg_grammar::Grammar;

/// Collects the terminal nodes of the (first-interpretation) yield of
/// `node`, left to right. At symbol nodes the first alternative is followed
/// (all alternatives share their yield in a well-formed dag).
pub fn yield_terminals(arena: &DagArena, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    collect_yield(arena, node, &mut out);
    out
}

fn collect_yield(arena: &DagArena, node: NodeId, out: &mut Vec<NodeId>) {
    match arena.kind(node) {
        NodeKind::Terminal { .. } => out.push(node),
        NodeKind::Bos | NodeKind::Eos => {}
        NodeKind::Symbol { .. } => {
            if let Some(&first) = arena.kids(node).first() {
                collect_yield(arena, first, out);
            }
        }
        _ => {
            for &k in arena.kids(node) {
                collect_yield(arena, k, out);
            }
        }
    }
}

/// Preorder traversal over the unique nodes reachable from `root`
/// (shared nodes under choice points are visited once).
pub fn descendants(arena: &DagArena, root: NodeId) -> Descendants<'_> {
    Descendants {
        arena,
        stack: vec![root],
        seen: std::collections::HashSet::new(),
    }
}

/// Iterator returned by [`descendants`].
pub struct Descendants<'a> {
    arena: &'a DagArena,
    stack: Vec<NodeId>,
    seen: std::collections::HashSet<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while let Some(n) = self.stack.pop() {
            if self.seen.insert(n) {
                // Reverse order so children come out left to right.
                self.stack.extend(self.arena.kids(n).iter().rev());
                return Some(n);
            }
        }
        None
    }
}

/// The yield of `node` as space-separated lexemes (testing aid).
pub fn yield_string(arena: &DagArena, node: NodeId) -> String {
    yield_terminals(arena, node)
        .iter()
        .map(|&t| match arena.kind(t) {
            NodeKind::Terminal { lexeme, .. } => lexeme.as_str(),
            _ => unreachable!("yield_terminals returns only terminals"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Pretty-prints a dag as an indented tree, showing choice points, recorded
/// parse states, and sequence structure. Shared subtrees under symbol nodes
/// are printed once per reference (marked with `^` on re-visits).
pub fn dump(arena: &DagArena, root: NodeId, g: &Grammar) -> String {
    let mut out = String::new();
    let mut seen = std::collections::HashSet::new();
    dump_rec(arena, root, g, 0, &mut seen, &mut out);
    out
}

fn dump_rec(
    arena: &DagArena,
    node: NodeId,
    g: &Grammar,
    depth: usize,
    seen: &mut std::collections::HashSet<NodeId>,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let again = !seen.insert(node);
    let n = arena.node(node);
    match n.kind() {
        NodeKind::Terminal { lexeme, .. } => {
            out.push_str(&format!("'{lexeme}'"));
        }
        NodeKind::Production { prod } => {
            out.push_str(&g.display_production(*prod));
            out.push_str(&format!(" [{}]", n.state()));
        }
        NodeKind::Symbol { symbol } => {
            out.push_str(&format!(
                "({} choice, {} alts)",
                g.nonterminal_name(*symbol),
                n.kid_count()
            ));
        }
        NodeKind::Sequence { symbol } => {
            out.push_str(&format!(
                "{}* seq [{}]",
                g.nonterminal_name(*symbol),
                n.state()
            ));
        }
        NodeKind::SeqRun { symbol } => {
            out.push_str(&format!(
                "{}* run [{}]",
                g.nonterminal_name(*symbol),
                n.state()
            ));
        }
        NodeKind::Root => out.push_str("root"),
        NodeKind::Bos => out.push_str("<bos>"),
        NodeKind::Eos => out.push_str("<eos>"),
    }
    if again {
        out.push_str(" ^shared\n");
        return;
    }
    out.push('\n');
    for &k in arena.kids(node) {
        dump_rec(arena, k, g, depth + 1, seen, out);
    }
}

/// Structural equality of two dags: same kinds, lexemes, child shapes and
/// (for symbol nodes) the same alternatives in order. Recorded parse states
/// and physical sequence chunking are ignored — a balanced sequence equals
/// its flat counterpart if the elements match.
pub fn structurally_equal(a: &DagArena, ra: NodeId, b: &DagArena, rb: NodeId) -> bool {
    let fa = flatten(a, ra);
    let fb = flatten(b, rb);
    fa == fb
}

/// A canonical linearization used by [`structurally_equal`]: sequence
/// containers are flattened so physical balance does not matter.
#[derive(Debug, PartialEq, Eq)]
enum Flat {
    Term(String, u32),
    Open(u32, &'static str, u32),
    Close,
}

fn flatten(arena: &DagArena, root: NodeId) -> Vec<Flat> {
    let mut out = Vec::new();
    flatten_rec(arena, root, &mut out, false);
    out
}

fn flatten_rec(arena: &DagArena, node: NodeId, out: &mut Vec<Flat>, in_seq: bool) {
    match arena.kind(node) {
        NodeKind::Terminal { term, lexeme } => {
            out.push(Flat::Term(lexeme.clone(), term.index() as u32));
        }
        NodeKind::Bos | NodeKind::Eos => {}
        NodeKind::Production { prod } => {
            out.push(Flat::Open(prod.index() as u32, "prod", 0));
            for &k in arena.kids(node) {
                flatten_rec(arena, k, out, false);
            }
            out.push(Flat::Close);
        }
        NodeKind::Symbol { symbol } => {
            out.push(Flat::Open(
                symbol.index() as u32,
                "sym",
                arena.kids(node).len() as u32,
            ));
            for &k in arena.kids(node) {
                flatten_rec(arena, k, out, false);
            }
            out.push(Flat::Close);
        }
        NodeKind::Sequence { symbol } => {
            if in_seq {
                // Prefix sequence inside a sequence: transparent.
                for &k in arena.kids(node) {
                    flatten_rec(arena, k, out, true);
                }
            } else {
                out.push(Flat::Open(symbol.index() as u32, "seq", 0));
                for &k in arena.kids(node) {
                    flatten_rec(arena, k, out, true);
                }
                out.push(Flat::Close);
            }
        }
        NodeKind::SeqRun { .. } => {
            for &k in arena.kids(node) {
                flatten_rec(arena, k, out, true);
            }
        }
        NodeKind::Root => {
            out.push(Flat::Open(0, "root", 0));
            for &k in arena.kids(node) {
                flatten_rec(arena, k, out, false);
            }
            out.push(Flat::Close);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ParseState;
    use wg_grammar::{GrammarBuilder, NonTerminal, ProdId, Symbol, Terminal};

    fn tiny_grammar() -> Grammar {
        let mut b = GrammarBuilder::new("g");
        let x = b.terminal("x");
        let s = b.nonterminal("S");
        b.prod(s, vec![Symbol::T(x)]);
        b.start(s);
        b.build().unwrap()
    }

    #[test]
    fn yield_and_dump() {
        let g = tiny_grammar();
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x]);
        let root = a.root(p);
        assert_eq!(yield_string(&a, root), "x");
        let d = dump(&a, root, &g);
        assert!(d.contains("root"));
        assert!(d.contains("S -> x"));
        assert!(d.contains("'x'"));
        assert!(d.contains("<bos>") && d.contains("<eos>"));
    }

    #[test]
    fn symbol_nodes_share_yield_and_mark_shared_children() {
        let g = tiny_grammar();
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let p2 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        let root = a.root(sym);
        assert_eq!(yield_string(&a, root), "x", "yield follows first alt");
        let d = dump(&a, root, &g);
        assert!(d.contains("choice, 2 alts"));
        assert!(d.contains("^shared"), "x is shared between alternatives");
    }

    #[test]
    fn structural_equality_ignores_states() {
        let mut a = DagArena::new();
        let xa = a.terminal(Terminal::from_index(1), "x");
        let pa = a.production(ProdId::from_index(1), ParseState(7), &[xa]);
        let ra = a.root(pa);
        let mut b = DagArena::new();
        let xb = b.terminal(Terminal::from_index(1), "x");
        let pb = b.production(ProdId::from_index(1), ParseState::MULTI, &[xb]);
        let rb = b.root(pb);
        assert!(structurally_equal(&a, ra, &b, rb));
    }

    #[test]
    fn structural_equality_detects_differences() {
        let mut a = DagArena::new();
        let xa = a.terminal(Terminal::from_index(1), "x");
        let pa = a.production(ProdId::from_index(1), ParseState(0), &[xa]);
        let ra = a.root(pa);
        let mut b = DagArena::new();
        let xb = b.terminal(Terminal::from_index(1), "y");
        let pb = b.production(ProdId::from_index(1), ParseState(0), &[xb]);
        let rb = b.root(pb);
        assert!(!structurally_equal(&a, ra, &b, rb), "different lexeme");
        let mut c = DagArena::new();
        let xc = c.terminal(Terminal::from_index(1), "x");
        let pc = c.production(ProdId::from_index(2), ParseState(0), &[xc]);
        let rc = c.root(pc);
        assert!(!structurally_equal(&a, ra, &c, rc), "different production");
    }

    #[test]
    fn sequences_compare_flat() {
        let nt = NonTerminal::from_index(1);
        // Flat: Sequence[a b c]
        let mut a = DagArena::new();
        let e: Vec<NodeId> = ["a", "b", "c"]
            .iter()
            .map(|s| a.terminal(Terminal::from_index(1), s))
            .collect();
        let sa = a.sequence(nt, ParseState(0), &e);
        let ra = a.root(sa);
        // Chunked: Sequence[ Sequence[a b] run[c] ]
        let mut b = DagArena::new();
        let ba = b.terminal(Terminal::from_index(1), "a");
        let bb = b.terminal(Terminal::from_index(1), "b");
        let prefix = b.sequence(nt, ParseState(0), &[ba, bb]);
        let bc = b.terminal(Terminal::from_index(1), "c");
        let run = b.seq_run(nt, ParseState(2), &[bc]);
        let sb = b.sequence(nt, ParseState(0), &[prefix, run]);
        let rb = b.root(sb);
        assert!(structurally_equal(&a, ra, &b, rb));
    }
}

#[cfg(test)]
mod descendants_tests {
    use super::*;
    use crate::node::ParseState;
    use wg_grammar::{NonTerminal, ProdId, Terminal};

    #[test]
    fn preorder_visits_unique_nodes_left_to_right() {
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let y = a.terminal(Terminal::from_index(1), "y");
        let p = a.production(ProdId::from_index(1), ParseState(0), &[x, y]);
        let root = a.root(p);
        let order: Vec<NodeId> = descendants(&a, root).collect();
        assert_eq!(order[0], root);
        let xi = order.iter().position(|&n| n == x).unwrap();
        let yi = order.iter().position(|&n| n == y).unwrap();
        assert!(xi < yi, "left child first");
        assert_eq!(order.len(), 6, "root, bos, p, x, y, eos");
    }

    #[test]
    fn shared_nodes_visited_once() {
        let mut a = DagArena::new();
        let x = a.terminal(Terminal::from_index(1), "x");
        let p1 = a.production(ProdId::from_index(1), ParseState::MULTI, &[x]);
        let p2 = a.production(ProdId::from_index(2), ParseState::MULTI, &[x]);
        let sym = a.symbol(NonTerminal::from_index(1), p1);
        a.add_choice(sym, p2);
        let root = a.root(sym);
        let order: Vec<NodeId> = descendants(&a, root).collect();
        assert_eq!(order.iter().filter(|&&n| n == x).count(), 1);
        assert_eq!(order.len(), 7, "root, bos, sym, p1, x, p2, eos");
    }
}
