//! Property tests for the dag's structural invariants.

use proptest::prelude::*;
use wg_dag::{
    rebalance_sequences, rebalance_sequences_full, sequence_depth, structurally_equal,
    yield_string, DagArena, NodeId, ParseState, SequencePolicy,
};
use wg_grammar::{NonTerminal, ProdId, Terminal};

struct P {
    separated: bool,
}

impl SequencePolicy for P {
    fn is_separated(&self, _s: NonTerminal) -> bool {
        self.separated
    }
    fn run_state(&self, _st: ParseState, _s: NonTerminal) -> Option<ParseState> {
        Some(ParseState(77))
    }
}

/// Builds a flat sequence over `n` elements (optionally separated).
fn flat(arena: &mut DagArena, sym: NonTerminal, n: usize, separated: bool) -> NodeId {
    let mut kids = Vec::new();
    for i in 0..n {
        if separated && i > 0 {
            kids.push(arena.terminal(Terminal::from_index(2), ","));
        }
        kids.push(arena.terminal(Terminal::from_index(1), &format!("e{i}")));
    }
    arena.sequence(sym, ParseState(0), kids)
}

proptest! {
    #[test]
    fn rebalance_preserves_yield(n in 1usize..300, separated in any::<bool>()) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, separated);
        let root = a.root(seq);
        let before = yield_string(&a, root);
        rebalance_sequences(&mut a, root, &P { separated });
        prop_assert_eq!(yield_string(&a, root), before);
        // Logarithmic depth whenever a rebuild happened.
        let d = sequence_depth(&a, seq);
        let bound = 2 * (usize::BITS - (n + 2).leading_zeros()) as usize + 4;
        prop_assert!(d <= bound, "depth {d} > bound {bound} for n {n}");
    }

    #[test]
    fn full_rebalance_is_idempotent(n in 1usize..200) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        rebalance_sequences_full(&mut a, root, &P { separated: false });
        let once = yield_string(&a, root);
        let changed = rebalance_sequences_full(&mut a, root, &P { separated: false });
        prop_assert_eq!(changed, 0, "second full pass must be a no-op");
        prop_assert_eq!(yield_string(&a, root), once);
    }

    #[test]
    fn gc_preserves_structure(n in 1usize..60, junk in 0usize..40) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Unreachable junk interleaved with live structure.
        for i in 0..junk {
            let t = a.terminal(Terminal::from_index(3), "junk");
            if i % 3 == 0 {
                a.production(ProdId::from_index(1), ParseState(0), vec![t]);
            }
        }
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        let reference = {
            let mut b = DagArena::new();
            let s2 = flat(&mut b, sym, n, false);
            let r2 = b.root(s2);
            (b, r2)
        };
        let before_len = a.len();
        let (new_root, _map) = a.collect_garbage(root);
        prop_assert!(a.len() <= before_len);
        prop_assert!(structurally_equal(&a, new_root, &reference.0, reference.1));
        // A second collection is a fixpoint.
        let live = a.len();
        let (newer_root, _) = a.collect_garbage(new_root);
        prop_assert_eq!(a.len(), live);
        prop_assert!(structurally_equal(&a, newer_root, &reference.0, reference.1));
    }

    #[test]
    fn widths_and_leftmost_consistent_after_ops(
        elems in proptest::collection::vec(0u8..3, 1..40),
    ) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Build a nested structure from the recipe; check invariants.
        let mut pieces: Vec<NodeId> = Vec::new();
        for (i, e) in elems.iter().enumerate() {
            let t = a.terminal(Terminal::from_index(1 + (*e as usize)), &format!("x{i}"));
            match e {
                0 => pieces.push(t),
                1 => {
                    let p = a.production(ProdId::from_index(1), ParseState(1), vec![t]);
                    pieces.push(p);
                }
                _ => {
                    let r = a.seq_run(sym, ParseState(2), vec![t]);
                    pieces.push(r);
                }
            }
        }
        let seq = a.sequence(sym, ParseState(0), pieces.clone());
        let root = a.root(seq);
        // width == number of terminals; leftmost == first terminal's kind.
        prop_assert_eq!(a.width(root) as usize, elems.len());
        let first_term = Terminal::from_index(1 + (elems[0] as usize));
        prop_assert_eq!(a.node(seq).leftmost(), first_term);
        // Appending updates width and keeps leftmost.
        let extra = a.terminal(Terminal::from_index(1), "extra");
        a.seq_append(seq, &[extra]);
        prop_assert_eq!(a.width(seq) as usize, elems.len() + 1);
        prop_assert_eq!(a.node(seq).leftmost(), first_term);
    }

    #[test]
    fn damage_marks_cover_exactly_the_spine(
        n in 2usize..50,
        victim in 0usize..50,
    ) {
        let victim = victim % n;
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        rebalance_sequences(&mut a, root, &P { separated: false });
        let terms = terminals(&a, root);
        prop_assert_eq!(terms.len(), n);
        a.mark_changed(terms[victim]);
        // Every ancestor of the victim is marked; the victim's siblings are
        // not (unless they lie on the ancestor chain, impossible for leaves).
        for (i, &t) in terms.iter().enumerate() {
            prop_assert_eq!(a.has_changes(t), i == victim);
        }
        prop_assert!(a.has_changes(root));
        a.clear_changes();
        prop_assert!(!a.has_changes(root));
        prop_assert!(!a.has_changes(terms[victim]));
    }
}

fn terminals(a: &DagArena, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    fn rec(a: &DagArena, n: NodeId, out: &mut Vec<NodeId>) {
        match a.kind(n) {
            wg_dag::NodeKind::Terminal { .. } => out.push(n),
            wg_dag::NodeKind::Bos | wg_dag::NodeKind::Eos => {}
            _ => {
                for &k in a.kids(n) {
                    rec(a, k, out);
                }
            }
        }
    }
    rec(a, root, &mut out);
    out
}
