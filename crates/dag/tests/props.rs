//! Property tests for the dag's structural invariants.

use proptest::prelude::*;
use wg_dag::{
    rebalance_sequences, rebalance_sequences_full, sequence_depth, structurally_equal,
    yield_string, DagArena, NodeId, ParseState, SequencePolicy,
};
use wg_grammar::{NonTerminal, ProdId, Terminal};

struct P {
    separated: bool,
}

impl SequencePolicy for P {
    fn is_separated(&self, _s: NonTerminal) -> bool {
        self.separated
    }
    fn run_state(&self, _st: ParseState, _s: NonTerminal) -> Option<ParseState> {
        Some(ParseState(77))
    }
}

/// Builds a flat sequence over `n` elements (optionally separated).
fn flat(arena: &mut DagArena, sym: NonTerminal, n: usize, separated: bool) -> NodeId {
    let mut kids = Vec::new();
    for i in 0..n {
        if separated && i > 0 {
            kids.push(arena.terminal(Terminal::from_index(2), ","));
        }
        kids.push(arena.terminal(Terminal::from_index(1), &format!("e{i}")));
    }
    arena.sequence(sym, ParseState(0), &kids)
}

/// What one element of the model document looks like. The reference model
/// replays the same descriptors into a fresh arena (no free lists, no
/// recycled slots, no reused slab regions) and the results must match.
#[derive(Debug, Clone)]
enum Elem {
    /// A bare terminal.
    Term(String),
    /// A production over one terminal.
    Prod(usize, String),
    /// A two-way choice over a shared terminal.
    Choice(usize, usize, String),
}

/// Builds one element into an arena.
fn build_elem(a: &mut DagArena, e: &Elem) -> NodeId {
    match e {
        Elem::Term(s) => a.terminal(Terminal::from_index(1), s),
        Elem::Prod(p, s) => {
            let t = a.terminal(Terminal::from_index(1), s);
            a.production(ProdId::from_index(1 + p % 7), ParseState(1), &[t])
        }
        Elem::Choice(p1, p2, s) => {
            let t = a.terminal(Terminal::from_index(1), s);
            let a1 = a.production(ProdId::from_index(1 + p1 % 7), ParseState::MULTI, &[t]);
            let a2 = a.production(ProdId::from_index(8 + p2 % 7), ParseState::MULTI, &[t]);
            let sym = a.symbol(NonTerminal::from_index(2), a1);
            a.add_choice(sym, a2);
            sym
        }
    }
}

fn elem_from(kind: u8, arg: u8, serial: usize) -> Elem {
    let lex = format!("w{serial}");
    match kind % 3 {
        0 => Elem::Term(lex),
        1 => Elem::Prod(arg as usize, lex),
        _ => Elem::Choice(arg as usize, arg as usize + 3, lex),
    }
}

/// Roots the current document: a production over the elements under a fresh
/// super-root (mirroring how a session holds exactly one live tree).
fn root_over(a: &mut DagArena, elems: &[NodeId]) -> NodeId {
    let body = a.production(ProdId::from_index(15), ParseState(0), elems);
    a.root(body)
}

proptest! {
    #[test]
    fn rebalance_preserves_yield(n in 1usize..300, separated in any::<bool>()) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, separated);
        let root = a.root(seq);
        let before = yield_string(&a, root);
        rebalance_sequences(&mut a, root, &P { separated });
        prop_assert_eq!(yield_string(&a, root), before);
        // Logarithmic depth whenever a rebuild happened.
        let d = sequence_depth(&a, seq);
        let bound = 2 * (usize::BITS - (n + 2).leading_zeros()) as usize + 4;
        prop_assert!(d <= bound, "depth {} > bound {} for n {}", d, bound, n);
    }

    #[test]
    fn full_rebalance_is_idempotent(n in 1usize..200) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        rebalance_sequences_full(&mut a, root, &P { separated: false });
        let once = yield_string(&a, root);
        let changed = rebalance_sequences_full(&mut a, root, &P { separated: false });
        prop_assert_eq!(changed, 0, "second full pass must be a no-op");
        prop_assert_eq!(yield_string(&a, root), once);
    }

    #[test]
    fn gc_preserves_structure(n in 1usize..60, junk in 0usize..40) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Unreachable junk interleaved with live structure.
        for i in 0..junk {
            let t = a.terminal(Terminal::from_index(3), "junk");
            if i % 3 == 0 {
                a.production(ProdId::from_index(1), ParseState(0), &[t]);
            }
        }
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        let reference = {
            let mut b = DagArena::new();
            let s2 = flat(&mut b, sym, n, false);
            let r2 = b.root(s2);
            (b, r2)
        };
        let before_len = a.len();
        let reclaimed = a.collect_garbage(root);
        // Ids are stable: same root, same slot count, fewer in use.
        prop_assert_eq!(a.len(), before_len);
        prop_assert_eq!(a.in_use(), before_len - reclaimed);
        prop_assert!(structurally_equal(&a, root, &reference.0, reference.1));
        // A second collection is a fixpoint.
        let in_use = a.in_use();
        prop_assert_eq!(a.collect_garbage(root), 0);
        prop_assert_eq!(a.in_use(), in_use);
        prop_assert!(structurally_equal(&a, root, &reference.0, reference.1));
    }

    /// The free-list/slab arena against a fresh-arena reference model:
    /// random interleavings of element appends, replacements (creating
    /// garbage), and collections must leave exactly the structure a fresh
    /// arena builds from the surviving descriptors — same shapes, same
    /// yields, same choice sets — no matter which recycled slots and slab
    /// regions the live arena handed out along the way.
    #[test]
    fn recycled_arena_matches_fresh_reference_model(
        ops in proptest::collection::vec((0u8..4, any::<u8>(), any::<u8>()), 1..80),
    ) {
        let mut a = DagArena::new();
        let mut elems: Vec<NodeId> = Vec::new();
        let mut model: Vec<Elem> = Vec::new();
        let mut serial = 0usize;
        let mut last_root = NodeId::NONE;
        for (op, x, y) in ops {
            match op {
                0 | 1 if op == 0 || elems.is_empty() => {
                    // Append a fresh element.
                    let e = elem_from(x, y, serial);
                    serial += 1;
                    elems.push(build_elem(&mut a, &e));
                    model.push(e);
                }
                1 => {
                    // Replace an element; the old subtree becomes garbage.
                    let i = x as usize % elems.len();
                    let e = elem_from(y, x, serial);
                    serial += 1;
                    elems[i] = build_elem(&mut a, &e);
                    model[i] = e;
                }
                _ => {
                    // Collect. The previous root (if any) is garbage too.
                    if !elems.is_empty() {
                        let root = root_over(&mut a, &elems);
                        a.collect_garbage(root);
                        last_root = root;
                    }
                }
            }
        }
        prop_assume!(!elems.is_empty());
        let root = root_over(&mut a, &elems);
        let _ = last_root;
        let (b, ref_root) = {
            let mut b = DagArena::new();
            let ids: Vec<NodeId> = model.iter().map(|e| build_elem(&mut b, e)).collect();
            let r = root_over(&mut b, &ids);
            (b, r)
        };
        prop_assert!(
            structurally_equal(&a, root, &b, ref_root),
            "recycled arena diverged from fresh reference"
        );
        prop_assert_eq!(yield_string(&a, root), yield_string(&b, ref_root));
        // And the survivors still match after one more collection.
        a.collect_garbage(root);
        prop_assert!(structurally_equal(&a, root, &b, ref_root));
        prop_assert_eq!(yield_string(&a, root), yield_string(&b, ref_root));
    }

    #[test]
    fn widths_and_leftmost_consistent_after_ops(
        elems in proptest::collection::vec(0u8..3, 1..40),
    ) {
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        // Build a nested structure from the recipe; check invariants.
        let mut pieces: Vec<NodeId> = Vec::new();
        for (i, e) in elems.iter().enumerate() {
            let t = a.terminal(Terminal::from_index(1 + (*e as usize)), &format!("x{i}"));
            match e {
                0 => pieces.push(t),
                1 => {
                    let p = a.production(ProdId::from_index(1), ParseState(1), &[t]);
                    pieces.push(p);
                }
                _ => {
                    let r = a.seq_run(sym, ParseState(2), &[t]);
                    pieces.push(r);
                }
            }
        }
        let seq = a.sequence(sym, ParseState(0), &pieces);
        let root = a.root(seq);
        // width == number of terminals; leftmost == first terminal's kind.
        prop_assert_eq!(a.width(root) as usize, elems.len());
        let first_term = Terminal::from_index(1 + (elems[0] as usize));
        prop_assert_eq!(a.node(seq).leftmost(), first_term);
        // Appending updates width and keeps leftmost.
        let extra = a.terminal(Terminal::from_index(1), "extra");
        a.seq_append(seq, &[extra]);
        prop_assert_eq!(a.width(seq) as usize, elems.len() + 1);
        prop_assert_eq!(a.node(seq).leftmost(), first_term);
    }

    #[test]
    fn damage_marks_cover_exactly_the_spine(
        n in 2usize..50,
        victim in 0usize..50,
    ) {
        let victim = victim % n;
        let sym = NonTerminal::from_index(1);
        let mut a = DagArena::new();
        let seq = flat(&mut a, sym, n, false);
        let root = a.root(seq);
        rebalance_sequences(&mut a, root, &P { separated: false });
        let terms = terminals(&a, root);
        prop_assert_eq!(terms.len(), n);
        a.mark_changed(terms[victim]);
        // Every ancestor of the victim is marked; the victim's siblings are
        // not (unless they lie on the ancestor chain, impossible for leaves).
        for (i, &t) in terms.iter().enumerate() {
            prop_assert_eq!(a.has_changes(t), i == victim);
        }
        prop_assert!(a.has_changes(root));
        a.clear_changes();
        prop_assert!(!a.has_changes(root));
        prop_assert!(!a.has_changes(terms[victim]));
    }
}

/// Soak: 10k edit cycles (replace one element, collect when due) keep the
/// arena's slot count bounded and — once the free lists are warm — stop
/// taking fresh slots from the allocator entirely.
#[test]
fn soak_10k_edits_bounded_and_allocation_free() {
    let mut a = DagArena::new();
    let mut elems: Vec<NodeId> = (0..50)
        .map(|i| build_elem(&mut a, &Elem::Prod(i, format!("s{i}"))))
        .collect();
    let mut fresh_after_warmup = 0;
    for edit in 0..10_000 {
        let i = (edit * 7 + 3) % elems.len();
        let kind = (edit % 3) as u8;
        let e = elem_from(kind, (edit % 11) as u8, 50 + edit);
        elems[i] = build_elem(&mut a, &e);
        if a.should_collect() {
            let root = root_over(&mut a, &elems);
            a.collect_garbage(root);
        }
        if edit == 2_000 {
            fresh_after_warmup = a.fresh_node_slots();
        }
    }
    assert!(
        a.len() < 2_000,
        "arena grew unbounded over 10k edits: {} slots",
        a.len()
    );
    assert_eq!(
        a.fresh_node_slots(),
        fresh_after_warmup,
        "warm session must serve every node from the free list"
    );
    assert!(
        a.recycled_node_slots() > 9_000,
        "edits ran on recycled slots"
    );
}

fn terminals(a: &DagArena, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    fn rec(a: &DagArena, n: NodeId, out: &mut Vec<NodeId>) {
        match a.kind(n) {
            wg_dag::NodeKind::Terminal { .. } => out.push(n),
            wg_dag::NodeKind::Bos | wg_dag::NodeKind::Eos => {}
            _ => {
                for &k in a.kids(n) {
                    rec(a, k, out);
                }
            }
        }
    }
    rec(a, root, &mut out);
    out
}
