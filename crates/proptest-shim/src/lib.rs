//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides the subset of proptest's API that the workspace's property
//! tests use: the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`]
//! macros, the [`Strategy`] trait with `Just`, ranges, tuples,
//! [`collection::vec`], `prop_map`, unions, [`any`], and string strategies
//! for the simple character-class patterns the tests rely on.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. A failing case reports the generated inputs verbatim. Input
//! generation is deterministic per test (seeded from the test's module
//! path and name), so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails with this message.
    Fail(String),
    /// The inputs were rejected by [`prop_assume!`]; another case is drawn.
    Reject,
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// A generator seeded from a test's fully qualified name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one property: draws inputs until `cfg.cases` cases pass.
///
/// The closure returns the formatted inputs (for failure reports) and the
/// case's outcome. Called by the code [`proptest!`] expands to; not meant
/// for direct use.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = TestRng::for_test(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    while passed < cfg.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 10_000,
                    "{name}: gave up after {rejected} rejected inputs ({passed} cases passed)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {passed} failed: {msg}\n  inputs: {inputs}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to each generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s output.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// A union over `arms`; each draw picks one arm uniformly.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.arms.len());
        self.arms[ix].generate(rng)
    }
}

/// Boxes a strategy as a [`Union`] arm (used by [`prop_oneof!`]).
pub fn boxed_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec<S::Value>` strategy with `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let n = self.size.start + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// Strings matching a simple pattern: top-level `|` alternation over
/// sequences of character classes / literal characters, each with an
/// optional `{m,n}` / `{n}` / `?` / `+` / `*` quantifier. This covers the
/// patterns used by the workspace's tests; anything fancier (groups,
/// escapes, negated classes) panics loudly rather than mis-generating.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let alternatives: Vec<&str> = pattern.split('|').collect();
    let alt = alternatives[rng.below(alternatives.len())];
    let pieces = parse_pieces(alt, pattern);
    let mut out = String::new();
    for (chars, min, max) in pieces {
        let n = min + rng.below(max - min + 1);
        for _ in 0..n {
            out.push(chars[rng.below(chars.len())]);
        }
    }
    out
}

/// Parses one alternation-free pattern into `(choices, min, max)` pieces.
fn parse_pieces(alt: &str, whole: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut pieces = Vec::new();
    let mut it = alt.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let d = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {whole:?}"));
                    if d == ']' {
                        break;
                    }
                    assert!(
                        d != '^' || !set.is_empty(),
                        "negated classes unsupported in pattern {whole:?}"
                    );
                    if it.peek() == Some(&'-') {
                        it.next();
                        let hi = it
                            .next()
                            .unwrap_or_else(|| panic!("dangling '-' in pattern {whole:?}"));
                        assert!(hi != ']', "dangling '-' in pattern {whole:?}");
                        set.extend(d..=hi);
                    } else {
                        set.push(d);
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {whole:?}");
                set
            }
            '(' | ')' | '\\' | '.' | '^' | '$' | '{' | '}' | '?' | '+' | '*' => {
                panic!("unsupported pattern syntax {c:?} in {whole:?}")
            }
            lit => vec![lit],
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut digits = String::new();
                let mut min_max = (0usize, 0usize);
                let mut saw_comma = false;
                loop {
                    let d = it
                        .next()
                        .unwrap_or_else(|| panic!("unterminated quantifier in {whole:?}"));
                    match d {
                        '0'..='9' => digits.push(d),
                        ',' => {
                            min_max.0 = digits.parse().unwrap();
                            digits.clear();
                            saw_comma = true;
                        }
                        '}' => {
                            let n: usize = digits.parse().unwrap();
                            if saw_comma {
                                min_max.1 = n;
                            } else {
                                min_max = (n, n);
                            }
                            break;
                        }
                        other => panic!("bad quantifier char {other:?} in {whole:?}"),
                    }
                }
                assert!(min_max.0 <= min_max.1, "inverted quantifier in {whole:?}");
                min_max
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        pieces.push((chars, min, max));
    }
    pieces
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing inputs until the configured number of cases
/// pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                &$cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (__inputs, __outcome)
                },
            );
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_arm($arm)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure reports the
/// generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case's inputs; the runner draws a fresh case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, boxed_arm, Any, Arbitrary, Just, Map, ProptestConfig, Strategy, TestCaseError,
        TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_shape() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()), "{s:?}");
        }
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,5}|[0-9]{1,4}", &mut rng);
            let alpha = s.bytes().all(|b| b.is_ascii_lowercase());
            let digit = s.bytes().all(|b| b.is_ascii_digit());
            assert!(alpha || digit, "{s:?}");
        }
        // {0,n} can produce empty strings; spaces in classes are literal.
        let mut saw_empty = false;
        for _ in 0..300 {
            let s = Strategy::generate(&"[a-z0-9 ]{0,8}", &mut rng);
            saw_empty |= s.is_empty();
            assert!(
                s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b' '),
                "{s:?}"
            );
        }
        assert!(saw_empty);
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn runner_draws_in_bounds(
            n in 3usize..10,
            pair in (0u8..2, 0usize..5),
            flip in any::<bool>(),
            v in crate::collection::vec(0u8..4, 1..6),
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(pair.0 < 2 && pair.1 < 5, "pair out of range: {pair:?}");
            prop_assume!(flip | !flip);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&x| x > 3).count(), 0, "elements above 3: {:?}", v);
        }
    }
}
