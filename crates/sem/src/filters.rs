//! Dynamic **syntactic** filters (Section 4.1).
//!
//! Some ambiguities are resolved by a fixed syntactic preference rather than
//! semantic information — the canonical case is C++'s "prefer a declaration
//! to an expression" rule, which cannot be encoded statically because the
//! competing reductions cannot be delayed until enough lookahead has
//! accumulated. The paper runs such rules as an incremental post-pass over
//! the freshly built choice points and, unlike semantic filters, **does not
//! retain** the eliminated interpretations.

use crate::analyze::AltKind;
use crate::classify::Classifier;
use std::collections::HashSet;
use wg_dag::{DagArena, NodeId, NodeKind};
use wg_grammar::Grammar;

/// A syntactic disambiguation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntacticFilter {
    /// C++'s rule: where a region parses as both a declaration and a
    /// statement/expression, keep the declaration.
    PreferDeclaration,
}

/// Applies `filter` to every choice point under `root`, collapsing the
/// resolved ones in place (losers are discarded, per Section 4.1). Returns
/// the number of choice points eliminated.
///
/// Only runs on the simplified C/C++ grammars of `wg-langs` (the classifier
/// nonterminals must exist).
///
/// # Panics
///
/// Panics if the grammar lacks the classifier nonterminals.
pub fn apply_syntactic_filter(
    arena: &mut DagArena,
    root: NodeId,
    g: &Grammar,
    filter: SyntacticFilter,
) -> usize {
    let SyntacticFilter::PreferDeclaration = filter;
    let classifier = Classifier::resolve(g);

    // Collect choice points first (collapsing restructures parents).
    let mut choices = Vec::new();
    let mut stack = vec![root];
    let mut seen = HashSet::new();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        if matches!(arena.kind(n), NodeKind::Symbol { .. }) {
            choices.push(n);
        }
        stack.extend_from_slice(arena.kids(n));
    }

    let mut collapsed = 0;
    for sym in choices {
        let kids: Vec<NodeId> = arena.kids(sym).to_vec();
        let kinds: Vec<AltKind> = kids
            .iter()
            .map(|&k| classifier.alt_kind(arena, k))
            .collect();
        // The rule only fires on decl-vs-statement choices.
        let Some(decl_ix) = kinds.iter().position(|k| *k == AltKind::Decl) else {
            continue;
        };
        if kinds.iter().all(|k| *k == AltKind::Decl) {
            continue;
        }
        arena.collapse_choice(sym, decl_ix);
        collapsed += 1;
    }
    collapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_core::Session;
    use wg_dag::{yield_string, DagStats};
    use wg_langs::simp_cpp;

    #[test]
    fn prefer_declaration_collapses_the_running_example() {
        let cfg = Box::leak(Box::new(simp_cpp()));
        let mut s = Session::new(cfg, "a (b); c (d);").unwrap();
        assert!(s.stats().choice_points >= 2);
        let before_yield = yield_string(s.arena(), s.root());
        let root = s.root();
        let n = apply_syntactic_filter(
            s.arena_mut(),
            root,
            cfg.grammar(),
            SyntacticFilter::PreferDeclaration,
        );
        assert!(n >= 2, "both item-level choices fire the rule");
        let stats = DagStats::compute(s.arena(), s.root());
        assert_eq!(
            stats.choice_points, 0,
            "syntactic losers are discarded, not retained"
        );
        assert_eq!(yield_string(s.arena(), s.root()), before_yield);
        // The surviving structure is the declaration reading.
        assert!(s.dump().contains("decl"), "{}", s.dump());
    }

    #[test]
    fn filter_ignores_unambiguous_programs() {
        let cfg = Box::leak(Box::new(simp_cpp()));
        let mut s = Session::new(cfg, "int x; x = x + 1;").unwrap();
        let root = s.root();
        assert_eq!(
            apply_syntactic_filter(
                s.arena_mut(),
                root,
                cfg.grammar(),
                SyntacticFilter::PreferDeclaration
            ),
            0
        );
    }

    #[test]
    fn expression_level_choices_survive() {
        // f(5) in C++ is call-vs-cast: no decl alternative, so the
        // declaration-preference rule must leave it for semantic filtering.
        let cfg = Box::leak(Box::new(simp_cpp()));
        let mut s = Session::new(cfg, "f (5);").unwrap();
        let before = s.stats().choice_points;
        assert!(before >= 1);
        let root = s.root();
        apply_syntactic_filter(
            s.arena_mut(),
            root,
            cfg.grammar(),
            SyntacticFilter::PreferDeclaration,
        );
        assert_eq!(s.stats().choice_points, before, "{}", s.dump());
    }

    #[test]
    fn filtered_tree_remains_editable() {
        let cfg = Box::leak(Box::new(simp_cpp()));
        let mut s = Session::new(cfg, "a (b); int z;").unwrap();
        let root = s.root();
        apply_syntactic_filter(
            s.arena_mut(),
            root,
            cfg.grammar(),
            SyntacticFilter::PreferDeclaration,
        );
        assert_eq!(s.stats().choice_points, 0);
        // Subsequent incremental edits still work on the collapsed tree.
        let pos = s.text().find('z').unwrap();
        s.edit(pos, 1, "renamed");
        let out = s.reparse().unwrap();
        assert!(out.incorporated);
        assert!(yield_string(s.arena(), s.root()).contains("renamed"));
    }
}
