//! Scoped binding contours (Figure 8a/8b of the paper).

use std::collections::HashMap;

/// The namespace a name is bound in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameKind {
    /// Introduced by `typedef int name ;`.
    Type,
    /// Introduced by a function definition.
    Function,
    /// Introduced by a variable declaration.
    Variable,
}

/// A stack of binding contours; one per lexical scope.
#[derive(Debug, Clone, Default)]
pub struct ScopeStack {
    scopes: Vec<HashMap<String, NameKind>>,
}

impl ScopeStack {
    /// A stack holding only the global scope.
    pub fn new() -> ScopeStack {
        ScopeStack {
            scopes: vec![HashMap::new()],
        }
    }

    /// Opens a nested scope (entering a block).
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Closes the innermost scope.
    ///
    /// # Panics
    ///
    /// Panics if only the global scope remains.
    pub fn pop(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Binds `name` in the innermost scope, returning any shadowed binding
    /// from the same scope.
    pub fn bind(&mut self, name: &str, kind: NameKind) -> Option<NameKind> {
        self.scopes
            .last_mut()
            .expect("global scope always present")
            .insert(name.to_string(), kind)
    }

    /// Looks `name` up, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<NameKind> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Whether `name` currently names a type.
    pub fn is_type(&self, name: &str) -> bool {
        self.lookup(name) == Some(NameKind::Type)
    }

    /// Current nesting depth (1 = global only).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// Total bindings across all scopes (diagnostics).
    pub fn len(&self) -> usize {
        self.scopes.iter().map(|s| s.len()).sum()
    }

    /// Whether no names are bound at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut s = ScopeStack::new();
        assert!(s.is_empty());
        s.bind("t", NameKind::Type);
        s.bind("f", NameKind::Function);
        assert!(s.is_type("t"));
        assert_eq!(s.lookup("f"), Some(NameKind::Function));
        assert_eq!(s.lookup("zzz"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn inner_scopes_shadow_outer() {
        let mut s = ScopeStack::new();
        s.bind("x", NameKind::Type);
        s.push();
        assert!(s.is_type("x"), "outer binding visible inside");
        s.bind("x", NameKind::Variable);
        assert!(!s.is_type("x"), "shadowed");
        s.pop();
        assert!(s.is_type("x"), "restored after pop");
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn rebinding_in_same_scope_reports_shadowed() {
        let mut s = ScopeStack::new();
        assert_eq!(s.bind("a", NameKind::Variable), None);
        assert_eq!(s.bind("a", NameKind::Type), Some(NameKind::Variable));
    }

    #[test]
    #[should_panic(expected = "cannot pop the global scope")]
    fn popping_global_scope_panics() {
        ScopeStack::new().pop();
    }
}
