//! The disambiguating semantic walk (Figure 8, passes a–d).

use crate::classify::Classifier;
use crate::scope::{NameKind, ScopeStack};
use std::collections::HashMap;
use wg_dag::{DagArena, NodeId, NodeKind};
use wg_grammar::{Grammar, NonTerminal, ProdId, Symbol, Terminal};

/// First `id` lexeme in the yield of `node`, borrowed from the arena (no
/// per-probe allocation): the head identifier whose namespace decides a
/// choice point's interpretation. Choice points probe their first
/// alternative only (all alternatives share the yield).
pub(crate) fn head_identifier(arena: &DagArena, id: Terminal, node: NodeId) -> Option<&str> {
    match arena.kind(node) {
        NodeKind::Terminal { term, lexeme } if *term == id => Some(lexeme),
        NodeKind::Terminal { .. } | NodeKind::Bos | NodeKind::Eos => None,
        NodeKind::Symbol { .. } => arena
            .kids(node)
            .first()
            .and_then(|&k| head_identifier(arena, id, k)),
        _ => arena
            .kids(node)
            .iter()
            .find_map(|&k| head_identifier(arena, id, k)),
    }
}

/// What an alternative of a choice point represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AltKind {
    /// A declaration interpretation.
    Decl,
    /// A call-expression interpretation.
    Call,
    /// A functional-cast interpretation (C++ only).
    Cast,
    /// Some other statement/expression shape.
    Other,
}

/// How to treat ambiguous constructs whose head identifier is unbound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strictness {
    /// Leave the choice point unresolved (the paper's persistent
    /// ambiguity for erroneous programs, Section 4.3).
    #[default]
    RequireBinding,
    /// Assume an unbound head is a function (what a batch C compiler's
    /// implicit-declaration rule would do).
    DefaultToCall,
}

/// The chosen interpretation of one choice point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the selected child of the symbol node.
    pub index: usize,
    /// Its classification.
    pub kind: AltKind,
}

/// The result of one semantic analysis run.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    selections: HashMap<NodeId, Selection>,
    /// Choice points left unresolved (missing binding information).
    pub persistent: Vec<NodeId>,
    /// Uses of names with no visible binding.
    pub unresolved_names: Vec<String>,
    /// Typedefs processed (pass a of Figure 8).
    pub typedefs: usize,
    /// Function definitions bound.
    pub functions: usize,
    /// Variables bound.
    pub variables: usize,
    /// Identifier uses examined.
    pub uses: usize,
    /// Uses that resolved to a binding.
    pub resolved_uses: usize,
    /// Def-use index: name → dag nodes referencing it (identifier uses,
    /// function-call heads and type uses, in document order). Lets
    /// environment services ("find all references", the typedef-removal
    /// relocation described in Section 4.2) run directly on the dag.
    pub references: HashMap<String, Vec<NodeId>>,
}

impl Analysis {
    /// The selection at a choice point, if disambiguation succeeded there.
    pub fn selection(&self, sym: NodeId) -> Option<Selection> {
        self.selections.get(&sym).copied()
    }

    /// Number of resolved choice points.
    pub fn resolved_choices(&self) -> usize {
        self.selections.len()
    }

    /// All resolved choice points with their selections (arbitrary order).
    pub fn selections_iter(&self) -> impl Iterator<Item = (NodeId, Selection)> + '_ {
        self.selections.iter().map(|(&n, &s)| (n, s))
    }

    /// Whether every choice point was resolved.
    pub fn is_fully_disambiguated(&self) -> bool {
        self.persistent.is_empty()
    }

    /// Dag nodes referencing `name` (empty slice if none).
    pub fn uses_of(&self, name: &str) -> &[NodeId] {
        self.references.get(name).map_or(&[], |v| v.as_slice())
    }

    /// A selector for [`wg_dag::DagStats::compute_with`]: the semantically
    /// chosen child per choice point (first child where unresolved).
    pub fn selector(&self) -> impl Fn(NodeId) -> usize + '_ {
        move |n| self.selections.get(&n).map_or(0, |s| s.index)
    }
}

/// Nonterminal/terminal handles resolved once per grammar.
///
/// Alternative classification lives in [`Classifier`] (shared with the
/// syntactic filter); this struct keeps only the handles the walk itself
/// dispatches on.
pub(crate) struct Names {
    pub(crate) id: Terminal,
    pub(crate) typedef_decl: NonTerminal,
    pub(crate) funcdef: NonTerminal,
    pub(crate) block: NonTerminal,
    pub(crate) decl: NonTerminal,
    pub(crate) type_id: NonTerminal,
    pub(crate) func_id: NonTerminal,
    pub(crate) decl_id: NonTerminal,
    pub(crate) id_use: NonTerminal,
}

impl Names {
    pub(crate) fn resolve(g: &Grammar) -> Names {
        let nt = |n: &str| {
            g.nonterminal_by_name(n)
                .unwrap_or_else(|| panic!("grammar lacks nonterminal `{n}`"))
        };
        Names {
            id: g.terminal_by_name("id").expect("grammar lacks `id`"),
            typedef_decl: nt("typedef_decl"),
            funcdef: nt("funcdef"),
            block: nt("block"),
            decl: nt("decl"),
            type_id: nt("type_id"),
            func_id: nt("func_id"),
            decl_id: nt("decl_id"),
            id_use: nt("id_use"),
        }
    }
}

/// Runs the semantic passes over a simplified-C/C++ parse dag.
///
/// # Panics
///
/// Panics if the grammar is not one of `wg_langs`' simplified-C variants
/// (the classifier nonterminals must exist).
pub fn analyze(arena: &DagArena, root: NodeId, g: &Grammar, strictness: Strictness) -> Analysis {
    let mut st = State {
        arena,
        g,
        names: Names::resolve(g),
        classifier: Classifier::resolve(g),
        scopes: ScopeStack::new(),
        out: Analysis::default(),
        strictness,
    };
    st.walk(root);
    st.out
}

struct State<'a> {
    arena: &'a DagArena,
    g: &'a Grammar,
    names: Names,
    classifier: Classifier,
    scopes: ScopeStack,
    out: Analysis,
    strictness: Strictness,
}

impl<'a> State<'a> {
    fn lhs(&self, prod: ProdId) -> NonTerminal {
        self.g.production(prod).lhs()
    }

    /// First `id` lexeme in the yield of `node` (the head identifier whose
    /// namespace decides the interpretation). Borrows from the arena, so
    /// warm probes never allocate.
    fn head_identifier(&self, node: NodeId) -> Option<&'a str> {
        head_identifier(self.arena, self.names.id, node)
    }

    /// Figure 8c: pick the child of a choice point from the head
    /// identifier's namespace.
    fn disambiguate(&mut self, sym: NodeId) -> Option<usize> {
        let kids: Vec<NodeId> = self.arena.kids(sym).to_vec();
        let kinds: Vec<AltKind> = kids
            .iter()
            .map(|&k| self.classifier.alt_kind(self.arena, k))
            .collect();
        let head = self.head_identifier(sym);
        let head_kind = head.and_then(|h| self.scopes.lookup(h));
        let want = match head_kind {
            Some(NameKind::Type) => {
                // Prefer a declaration; a functional cast when no decl
                // alternative exists (expression-level choice points).
                if kinds.contains(&AltKind::Decl) {
                    AltKind::Decl
                } else {
                    AltKind::Cast
                }
            }
            Some(NameKind::Function) | Some(NameKind::Variable) => AltKind::Call,
            None => match self.strictness {
                Strictness::DefaultToCall => AltKind::Call,
                Strictness::RequireBinding => {
                    self.out.persistent.push(sym);
                    return None;
                }
            },
        };
        let index = kinds.iter().position(|k| *k == want).or_else(|| {
            // Fall back to any non-Other alternative of a compatible shape.
            kinds.iter().position(|k| *k != AltKind::Other)
        })?;
        self.out.selections.insert(
            sym,
            Selection {
                index,
                kind: kinds[index],
            },
        );
        Some(index)
    }

    fn walk(&mut self, node: NodeId) {
        match self.arena.kind(node) {
            NodeKind::Terminal { .. } | NodeKind::Bos | NodeKind::Eos => {}
            NodeKind::Symbol { .. } => {
                let chosen = self.disambiguate(node).unwrap_or(0);
                let kid = self.arena.kids(node)[chosen];
                self.walk(kid);
            }
            NodeKind::Production { prod } => {
                let prod = *prod;
                let lhs = self.lhs(prod);
                let kids: Vec<NodeId> = self.arena.kids(node).to_vec();
                if lhs == self.names.typedef_decl {
                    // typedef int NAME ; — pass a of Figure 8.
                    if let Some(name) = kids.get(2).and_then(|&k| self.head_identifier(k)) {
                        self.scopes.bind(name, NameKind::Type);
                        self.out.typedefs += 1;
                    }
                } else if lhs == self.names.funcdef {
                    // int NAME ( ) block
                    if let Some(name) = kids.get(1).and_then(|&k| self.head_identifier(k)) {
                        self.scopes.bind(name, NameKind::Function);
                        self.out.functions += 1;
                    }
                    if let Some(&blk) = kids.last() {
                        self.walk(blk);
                    }
                } else if lhs == self.names.block {
                    self.scopes.push();
                    for &k in &kids {
                        self.walk(k);
                    }
                    self.scopes.pop();
                } else if lhs == self.names.decl {
                    self.walk_decl(prod, &kids);
                } else if lhs == self.names.id_use || lhs == self.names.func_id {
                    if let Some(name) = self.head_identifier(node) {
                        self.out.uses += 1;
                        self.record_reference(name, node);
                        if self.scopes.lookup(name).is_some() {
                            self.out.resolved_uses += 1;
                        } else {
                            self.out.unresolved_names.push(name.to_string());
                        }
                    }
                } else if lhs == self.names.type_id {
                    if let Some(name) = self.head_identifier(node) {
                        self.out.uses += 1;
                        self.record_reference(name, node);
                        if self.scopes.is_type(name) {
                            self.out.resolved_uses += 1;
                        } else {
                            self.out.unresolved_names.push(name.to_string());
                        }
                    }
                } else {
                    for &k in &kids {
                        self.walk(k);
                    }
                }
            }
            NodeKind::Sequence { .. } | NodeKind::SeqRun { .. } | NodeKind::Root => {
                for &k in self.arena.kids(node).to_vec().iter() {
                    self.walk(k);
                }
            }
        }
    }

    /// Binds the names a declaration introduces and records type uses.
    fn walk_decl(&mut self, prod: ProdId, kids: &[NodeId]) {
        let rhs = self.g.production(prod).rhs();
        match rhs.first() {
            Some(Symbol::T(_)) => {
                // 'int' id [= expr]
                if let Some(name) = kids.get(1).and_then(|&k| self.head_identifier(k)) {
                    self.scopes.bind(name, NameKind::Variable);
                    self.out.variables += 1;
                }
                // Initializer uses.
                if let Some(&init) = kids.get(3) {
                    self.walk(init);
                }
            }
            Some(Symbol::N(_)) => {
                // type_id decl_id | type_id ( decl_id ) : type use + binding.
                if let Some(&type_node) = kids.first() {
                    self.walk(type_node);
                }
                let decl_node = kids
                    .iter()
                    .find(|&&k| self.is_nonterminal_node(k, self.names.decl_id));
                if let Some(&dn) = decl_node {
                    if let Some(name) = self.head_identifier(dn) {
                        self.scopes.bind(name, NameKind::Variable);
                        self.out.variables += 1;
                    }
                }
            }
            None => {}
        }
    }

    /// Indexes a use site, allocating the key only on a name's first use.
    fn record_reference(&mut self, name: &str, node: NodeId) {
        if let Some(sites) = self.out.references.get_mut(name) {
            sites.push(node);
        } else {
            self.out.references.insert(name.to_string(), vec![node]);
        }
    }

    fn is_nonterminal_node(&self, node: NodeId, nt: NonTerminal) -> bool {
        self.arena
            .kind(node)
            .nonterminal_of(|p| self.g.production(p).lhs())
            == Some(nt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wg_core::Session;
    use wg_langs::{simp_c, simp_cpp};

    fn run(src: &str) -> (Session, Analysis) {
        let cfg = simp_c();
        let s = Session::new(&cfg, src).unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::RequireBinding,
        );
        (s, a)
    }

    #[test]
    fn typedef_resolves_to_declaration() {
        let (s, a) = run("typedef int t; t (x);");
        assert_eq!(a.typedefs, 1);
        assert!(a.is_fully_disambiguated());
        assert_eq!(a.resolved_choices(), 1);
        let stats = s.stats();
        assert_eq!(stats.choice_points, 1);
        // Find the choice point and check the selection.
        let sel: Vec<Selection> = a.selections.values().copied().collect();
        assert_eq!(sel[0].kind, AltKind::Decl);
        assert_eq!(a.variables, 1, "x bound by the chosen declaration");
    }

    #[test]
    fn function_resolves_to_call() {
        let (_s, a) = run("int f() { int y; } f (y);");
        assert!(a.is_fully_disambiguated());
        let sel: Vec<Selection> = a.selections.values().copied().collect();
        assert_eq!(sel[0].kind, AltKind::Call);
        assert_eq!(a.functions, 1);
    }

    #[test]
    fn unbound_head_is_persistent_ambiguity() {
        let (_s, a) = run("mystery (x);");
        assert!(!a.is_fully_disambiguated());
        assert_eq!(a.persistent.len(), 1);
        assert_eq!(a.resolved_choices(), 0);
    }

    #[test]
    fn default_to_call_strictness() {
        let cfg = Box::leak(Box::new(simp_c()));
        let s = Session::new(cfg, "mystery (x);").unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::DefaultToCall,
        );
        assert!(a.is_fully_disambiguated());
        let sel: Vec<Selection> = a.selections.values().copied().collect();
        assert_eq!(sel[0].kind, AltKind::Call);
    }

    #[test]
    fn scopes_gate_type_visibility() {
        // The typedef is inside a function: outside it, `t` is unbound.
        let (_s, a) = run("int f() { typedef int t; t (a); } t (b);");
        assert_eq!(a.typedefs, 1);
        assert_eq!(a.resolved_choices(), 1, "inner resolves");
        assert_eq!(a.persistent.len(), 1, "outer does not");
    }

    #[test]
    fn typedef_removal_flips_interpretation_without_reparsing_region() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(cfg, "typedef int t; int t2; t (x);").unwrap();
        let a1 = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::DefaultToCall,
        );
        let first: Vec<Selection> = a1.selections.values().copied().collect();
        assert_eq!(first[0].kind, AltKind::Decl);

        // Remove the typedef (edit far away from the ambiguous region).
        let out = {
            s.edit(0, "typedef int t;".len(), "int t;");
            s.reparse().unwrap()
        };
        assert!(out.incorporated);
        assert_eq!(
            s.stats().choice_points,
            1,
            "ambiguous region untouched by the parser"
        );
        let a2 = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::DefaultToCall,
        );
        let second: Vec<Selection> = a2.selections.values().copied().collect();
        assert_eq!(
            second[0].kind,
            AltKind::Call,
            "semantic filter reversed its decision without parser involvement"
        );
    }

    #[test]
    fn name_resolution_counts() {
        let (_s, a) = run("int x; int y = x + 2; y = x;");
        assert_eq!(a.variables, 2);
        assert!(a.uses >= 3);
        assert_eq!(a.unresolved_names.len(), 0);
        assert_eq!(a.uses, a.resolved_uses);
    }

    #[test]
    fn unresolved_names_reported() {
        let (_s, a) = run("x = y;");
        assert!(a.unresolved_names.contains(&"x".to_string()));
        assert!(a.unresolved_names.contains(&"y".to_string()));
        assert!(a.resolved_uses < a.uses);
    }

    #[test]
    fn cpp_cast_vs_call() {
        let cfg = Box::leak(Box::new(simp_cpp()));
        // t is a type: t(5) is a cast. f is a function: f(5) is a call.
        let s = Session::new(cfg, "typedef int t; int f() { int q; } t (5); f (5);").unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::RequireBinding,
        );
        assert!(a.is_fully_disambiguated(), "persistent: {:?}", a.persistent);
        let kinds: Vec<AltKind> = a.selections.values().map(|sl| sl.kind).collect();
        assert!(kinds.contains(&AltKind::Cast));
        assert!(kinds.contains(&AltKind::Call));
    }

    #[test]
    fn selector_feeds_dag_stats() {
        let (s, a) = run("typedef int t; t (x);");
        let with_first = wg_dag::DagStats::compute(s.arena(), s.root());
        let with_sel = wg_dag::DagStats::compute_with(s.arena(), s.root(), a.selector());
        // Both alternatives have similar size here; the embedded tree must
        // be no larger than the dag in either case.
        assert!(with_sel.tree_nodes <= with_sel.dag_nodes);
        assert_eq!(with_first.dag_nodes, with_sel.dag_nodes);
    }

    #[test]
    fn running_example_full_pipeline() {
        // Figure 1: declarations vs calls depending on earlier typedefs.
        let (_s, a) = run("typedef int a; int f() { int c2; } a (b); f (d2); int q = 1;");
        assert!(a.is_fully_disambiguated());
        let kinds: Vec<AltKind> = a.selections.values().map(|sl| sl.kind).collect();
        assert!(kinds.contains(&AltKind::Decl), "a (b); is a declaration");
        assert!(kinds.contains(&AltKind::Call), "f (d2); is a call");
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use wg_core::Session;
    use wg_langs::simp_c;

    #[test]
    fn references_indexed_per_name() {
        let cfg = Box::leak(Box::new(simp_c()));
        let s = Session::new(cfg, "int v; v = v + 1; int w = v;").unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::RequireBinding,
        );
        assert_eq!(a.uses_of("v").len(), 3);
        assert!(a.uses_of("w").is_empty(), "declaration sites are not uses");
        assert!(a.uses_of("nothing").is_empty());
    }

    #[test]
    fn typedef_use_sites_locatable_for_reinterpretation() {
        // Section 4.2: "binding information ... allows the former uses of
        // the declaration to be efficiently located" when a typedef is
        // removed. The reference index provides exactly that lookup.
        let cfg = Box::leak(Box::new(simp_c()));
        let s = Session::new(cfg, "typedef int t; t (a); t (b); t c;").unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::RequireBinding,
        );
        let sites = a.uses_of("t");
        assert_eq!(sites.len(), 3, "both ambiguous heads and the plain decl");
        // Each reference is a live dag node.
        for &n in sites {
            assert!(s
                .arena()
                .kind(n)
                .nonterminal_of(|p| cfg.grammar().production(p).lhs())
                .is_some());
        }
    }

    #[test]
    fn references_work_with_persistent_ambiguity() {
        // Even with an unresolved choice point, tools can query references
        // (Section 4.3: presentation-style services keep operating).
        let cfg = Box::leak(Box::new(simp_c()));
        let s = Session::new(cfg, "mystery (arg); arg = 1;").unwrap();
        let a = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::RequireBinding,
        );
        assert!(!a.is_fully_disambiguated());
        assert!(!a.uses_of("arg").is_empty());
    }
}
