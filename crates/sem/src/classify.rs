//! The one alternative classifier shared by the syntactic filter and the
//! semantic passes.
//!
//! `filters.rs` used to carry a shallow copy of `analyze`'s classifier;
//! the two could drift. This module owns the single implementation,
//! compiled to a per-production action table at resolve time so callers
//! (including the incremental [`crate::SemState`], which holds no grammar
//! reference) classify without touching the `Grammar` again.

use crate::analyze::AltKind;
use wg_dag::{DagArena, NodeId, NodeKind};
use wg_grammar::{Grammar, Symbol};

/// What classification does with one production.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassAct {
    /// `item`/`stmt` wrappers (and `expr -> <nonterminal> ...` chains):
    /// the first child decides.
    RecurseFirst,
    Decl,
    Call,
    Cast,
    Other,
}

/// The alternative classifier, compiled once per grammar.
#[derive(Debug, Clone)]
pub(crate) struct Classifier {
    acts: Vec<ClassAct>,
}

impl Classifier {
    /// Compiles the action table. `decl` and `item` are required (the
    /// classifier is meaningless without them); the expression-level names
    /// are optional so the syntactic filter keeps working on reduced
    /// grammars.
    ///
    /// # Panics
    ///
    /// Panics if the grammar lacks `decl` or `item`.
    pub(crate) fn resolve(g: &Grammar) -> Classifier {
        let decl = g.nonterminal_by_name("decl").expect("grammar lacks `decl`");
        let item = g.nonterminal_by_name("item").expect("grammar lacks `item`");
        let stmt = g.nonterminal_by_name("stmt");
        let expr = g.nonterminal_by_name("expr");
        let funcall = g.nonterminal_by_name("funcall");
        let type_id = g.nonterminal_by_name("type_id");
        let acts = g
            .productions()
            .map(|(_, p)| {
                let lhs = p.lhs();
                if lhs == item || Some(lhs) == stmt {
                    ClassAct::RecurseFirst
                } else if lhs == decl {
                    ClassAct::Decl
                } else if Some(lhs) == funcall {
                    ClassAct::Call
                } else if Some(lhs) == expr {
                    // expr -> funcall | type_id ( expr ) | ...
                    match p.rhs().first() {
                        Some(Symbol::N(n)) if Some(*n) == funcall => ClassAct::Call,
                        Some(Symbol::N(n)) if Some(*n) == type_id => ClassAct::Cast,
                        Some(Symbol::N(_)) => ClassAct::RecurseFirst,
                        _ => ClassAct::Other,
                    }
                } else {
                    ClassAct::Other
                }
            })
            .collect();
        Classifier { acts }
    }

    /// Classifies one alternative of a choice point.
    pub(crate) fn alt_kind(&self, arena: &DagArena, node: NodeId) -> AltKind {
        let NodeKind::Production { prod } = arena.kind(node) else {
            return AltKind::Other;
        };
        match self.acts[prod.index()] {
            ClassAct::RecurseFirst => arena
                .kids(node)
                .first()
                .map_or(AltKind::Other, |&k| self.alt_kind(arena, k)),
            ClassAct::Decl => AltKind::Decl,
            ClassAct::Call => AltKind::Call,
            ClassAct::Cast => AltKind::Cast,
            ClassAct::Other => AltKind::Other,
        }
    }
}
