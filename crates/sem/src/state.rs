//! Damage-driven incremental semantic analysis (Sections 4.2/4.3).
//!
//! [`crate::analyze`] is the batch oracle: a throwaway document-order walk.
//! [`SemState`] keeps the same facts *persistently*, keyed to stable dag
//! node ids, and repairs them from the reparse damage instead of
//! recomputing:
//!
//! - **Scope contours** — one binding map per block (plus the global
//!   scope), surviving reparses because blocks are reused by the
//!   incremental parser. Each binding entry remembers its *site* so
//!   position-aware lookup can reproduce the batch walk's
//!   "bound-so-far" visibility at any time, not just in document order.
//! - **Damage seeding** — the update retracts facts owned by the nodes the
//!   reparse flagged as changed (the same `mark_changed` plumbing that
//!   drives reuse in `wg-dag`), then re-walks from the root, skipping any
//!   subtree whose stamp says it was last analyzed under the same scope.
//! - **Flip in place** — a retained losing alternative is promoted by
//!   rewriting the stored [`Selection`] and re-analyzing only the newly
//!   effective subtree; the parser is never involved (Section 4.2).
//! - **Cut-off** — after repair, only names whose *exported* contour
//!   entries actually differ propagate to their recorded dependents
//!   (uses and choice points of that name); an edit that rebuilds a
//!   binding identically stops dead.

use crate::analyze::{head_identifier, AltKind, Analysis, Selection, Strictness};
use crate::classify::Classifier;
use crate::scope::NameKind;
use crate::symtab::{Sym, SymTab};
use std::sync::{Arc, Mutex};
use wg_core::{SemInfo, SemNameKind, SemReadView, SemUpdate, SemanticPass};
use wg_dag::{DagArena, DagRead, FxHashMap, FxHashSet, NodeId, NodeKind};
use wg_grammar::{Grammar, Symbol, Terminal};

/// How the walk dispatches on one production (compiled from the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// `typedef int NAME ;` — binds a type.
    TypedefDecl,
    /// `int NAME ( ) block` — binds a function, walks the body.
    Funcdef,
    /// `{ items }` — opens a contour.
    Block,
    /// `decl: 'int' id [= expr]` — binds a variable, walks the initializer.
    DeclInt,
    /// `decl: type_id ... decl_id ...` — type use then a variable binding.
    DeclTyped,
    /// `id_use` / `func_id` — a value-namespace use.
    IdUse,
    /// `type_id` — a type-namespace use.
    TypeId,
    /// `decl_id` — handled by its enclosing [`Shape::DeclTyped`].
    DeclId,
    /// Anything else: walk the kids.
    Generic,
}

/// Lookup discipline: the initial build walks in document order (batch
/// semantics fall out of insertion order); incremental repair must compare
/// positions because contours already hold bindings from *later* text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Build,
    Incremental,
}

/// One exported binding of a contour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BindEntry {
    /// The anchor node from which the binding is visible (the declaration
    /// production, or the `decl_id` node for bindings that take effect
    /// *after* their own type use is walked).
    site: NodeId,
    kind: NameKind,
}

/// A stable handle for one scope contour.
///
/// The incremental parser re-reduces a block's *production node* whenever
/// the damage (or its changed lookahead) reaches it, handing the block a
/// fresh [`NodeId`] while the interior `items` subtree is reused
/// wholesale. Facts and reuse stamps therefore reference scopes through
/// this indirection, which survives the churn: the new block node
/// *adopts* the contour its reused interior still names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CtrId(u32);

impl CtrId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A per-scope binding map with a link to its lexically enclosing scope.
#[derive(Debug, Clone)]
struct Contour {
    /// Enclosing scope ([`GLOBAL`]'s parent is itself and ends the chain).
    parent: CtrId,
    /// The block production node currently owning this contour
    /// ([`NodeId::NONE`] for the global scope).
    node: NodeId,
    entries: FxHashMap<Sym, Vec<BindEntry>>,
}

#[derive(Debug, Clone, Copy)]
struct BindFact {
    scope: CtrId,
    sym: Sym,
    kind: NameKind,
}

#[derive(Debug, Clone, Copy)]
struct UseFact {
    scope: CtrId,
    sym: Sym,
    /// `type_id` context: resolution requires the type namespace.
    is_type_ctx: bool,
    resolved: bool,
}

#[derive(Debug, Clone, Copy)]
struct ChoiceFact {
    scope: CtrId,
    head: Option<Sym>,
    sel: Option<Selection>,
    /// The paper's persistent ambiguity: head unbound under
    /// [`Strictness::RequireBinding`].
    persistent: bool,
}

/// The global contour's handle (always slot 0, never freed).
const GLOBAL: CtrId = CtrId(0);

/// Probes spent searching a reused interior for the old contour before
/// giving up and opening a fresh one (bounds the adoption scan).
const ADOPT_PROBES: usize = 64;

/// Iteration guard for the ripple loop before falling back to a rebuild.
const MAX_RIPPLE_ROUNDS: usize = 8;

/// Persistent, damage-driven semantic analysis over a session's parse dag.
///
/// Equivalent to rerunning [`crate::analyze`] after every reparse (the
/// differential property tests assert exactly that), but the work per edit
/// is proportional to the damage, not the document.
#[derive(Debug)]
pub struct SemState {
    id: Terminal,
    shapes: Vec<Shape>,
    classifier: Classifier,
    strictness: Strictness,
    symtab: SymTab,
    /// Contour slots, indexed by [`CtrId`]; slot 0 is the global scope.
    contours: Vec<Contour>,
    /// Freed contour slots available for reuse.
    ctr_free: Vec<CtrId>,
    /// Block production node → its contour (rebuilt on adoption).
    scope_of: FxHashMap<NodeId, CtrId>,
    binds: FxHashMap<NodeId, BindFact>,
    uses: FxHashMap<NodeId, UseFact>,
    choices: FxHashMap<NodeId, ChoiceFact>,
    /// Use sites per name (the def-use index behind `uses_of`).
    refs: FxHashMap<Sym, Vec<NodeId>>,
    /// Choice points per head name (ripple targets for flips).
    deps: FxHashMap<Sym, Vec<NodeId>>,
    /// Reuse stamps: node → scope it was last analyzed under. Kept at
    /// sequence-element granularity, so the map scales with lines, not
    /// nodes.
    stamps: FxHashMap<NodeId, CtrId>,
    /// Contour entries as they were before this update first touched them
    /// (the cut-off comparison baseline).
    pre: FxHashMap<(CtrId, Sym), Vec<BindEntry>>,
    /// Memoized document spans (terminal offsets), valid for one tree
    /// shape; cleared whenever the arena may have changed underneath us.
    spans: std::cell::RefCell<FxHashMap<NodeId, Option<(u32, u32)>>>,
    /// The published read view, built lazily on demand and dropped at the
    /// start of every update — all snapshots published between two updates
    /// share one frozen copy of the fact tables.
    view: Option<Arc<SemView>>,
    mode: Mode,
    built: bool,
    stats: SemUpdate,
}

impl SemState {
    /// Compiles the walk tables for `g` (one of `wg_langs`' simplified-C
    /// variants).
    ///
    /// # Panics
    ///
    /// Panics if the grammar lacks the simplified-C nonterminals.
    pub fn new(g: &Grammar, strictness: Strictness) -> SemState {
        let nt = |n: &str| {
            g.nonterminal_by_name(n)
                .unwrap_or_else(|| panic!("grammar lacks nonterminal `{n}`"))
        };
        let typedef_decl = nt("typedef_decl");
        let funcdef = nt("funcdef");
        let block = nt("block");
        let decl = nt("decl");
        let type_id = nt("type_id");
        let func_id = nt("func_id");
        let decl_id = nt("decl_id");
        let id_use = nt("id_use");
        let shapes = g
            .productions()
            .map(|(_, p)| {
                let lhs = p.lhs();
                if lhs == typedef_decl {
                    Shape::TypedefDecl
                } else if lhs == funcdef {
                    Shape::Funcdef
                } else if lhs == block {
                    Shape::Block
                } else if lhs == decl {
                    match p.rhs().first() {
                        Some(Symbol::T(_)) => Shape::DeclInt,
                        Some(Symbol::N(_)) => Shape::DeclTyped,
                        None => Shape::Generic,
                    }
                } else if lhs == id_use || lhs == func_id {
                    Shape::IdUse
                } else if lhs == type_id {
                    Shape::TypeId
                } else if lhs == decl_id {
                    Shape::DeclId
                } else {
                    Shape::Generic
                }
            })
            .collect();
        SemState {
            id: g.terminal_by_name("id").expect("grammar lacks `id`"),
            shapes,
            classifier: Classifier::resolve(g),
            strictness,
            symtab: SymTab::new(),
            contours: vec![Contour {
                parent: GLOBAL,
                node: NodeId::NONE,
                entries: FxHashMap::default(),
            }],
            ctr_free: Vec::new(),
            scope_of: FxHashMap::default(),
            binds: FxHashMap::default(),
            uses: FxHashMap::default(),
            choices: FxHashMap::default(),
            refs: FxHashMap::default(),
            deps: FxHashMap::default(),
            stamps: FxHashMap::default(),
            pre: FxHashMap::default(),
            spans: std::cell::RefCell::new(FxHashMap::default()),
            view: None,
            mode: Mode::Build,
            built: false,
            stats: SemUpdate::default(),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The selection at a choice point, if disambiguation succeeded there.
    pub fn selection(&self, sym: NodeId) -> Option<Selection> {
        self.choices.get(&sym).and_then(|c| c.sel)
    }

    /// Number of resolved choice points.
    pub fn resolved_choices(&self) -> usize {
        self.choices.values().filter(|c| c.sel.is_some()).count()
    }

    /// Choice points left persistently ambiguous, sorted by node index.
    pub fn persistent(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .choices
            .iter()
            .filter(|(_, c)| c.persistent)
            .map(|(&n, _)| n)
            .collect();
        v.sort_by_key(|n| n.index());
        v
    }

    /// Number of live block contours (the global scope is not counted).
    pub fn contour_count(&self) -> usize {
        self.contours.len() - 1 - self.ctr_free.len()
    }

    /// A comparable summary of every fact the analysis holds about the
    /// *current* tree.
    ///
    /// Facts are keyed by stable node identity and a reparse can drop a
    /// subtree without its nodes ever appearing in the damage list (the
    /// parser re-reduces a neighbouring spine and the old one just stops
    /// being reachable). Such facts are logically retracted the moment
    /// their owner detaches — they are filtered here — and physically
    /// removed by `prune` at the next collection.
    pub fn snapshot(&self, arena: &DagArena) -> SemSnapshot {
        let att = |n: NodeId| self.attached(arena, n);
        let mut selections: Vec<(usize, usize, AltKind)> = self
            .choices
            .iter()
            .filter(|(&n, _)| att(n))
            .filter_map(|(&n, c)| c.sel.map(|s| (n.index(), s.index, s.kind)))
            .collect();
        selections.sort_unstable();
        let mut unresolved: Vec<String> = self
            .uses
            .iter()
            .filter(|(&n, u)| att(n) && !u.resolved)
            .map(|(_, u)| self.symtab.name(u.sym).to_string())
            .collect();
        unresolved.sort_unstable();
        let mut references: Vec<(String, Vec<usize>)> = self
            .refs
            .iter()
            .filter_map(|(&s, v)| {
                let mut sites: Vec<usize> =
                    v.iter().filter(|&&n| att(n)).map(|n| n.index()).collect();
                sites.sort_unstable();
                (!sites.is_empty()).then(|| (self.symtab.name(s).to_string(), sites))
            })
            .collect();
        references.sort_unstable();
        let mut persistent: Vec<usize> = self
            .choices
            .iter()
            .filter(|(&n, c)| c.persistent && att(n))
            .map(|(&n, _)| n.index())
            .collect();
        persistent.sort_unstable();
        SemSnapshot {
            typedefs: self.count_binds(arena, NameKind::Type),
            functions: self.count_binds(arena, NameKind::Function),
            variables: self.count_binds(arena, NameKind::Variable),
            uses: self.uses.keys().filter(|&&n| att(n)).count(),
            resolved_uses: self
                .uses
                .iter()
                .filter(|(&n, u)| att(n) && u.resolved)
                .count(),
            selections,
            persistent,
            unresolved,
            references,
        }
    }

    fn count_binds(&self, arena: &DagArena, kind: NameKind) -> usize {
        self.binds
            .iter()
            .filter(|(&n, b)| b.kind == kind && self.attached(arena, n))
            .count()
    }

    /// Whether `n` is attached to the current tree (its parent chain, with
    /// kid-membership verified at every level, reaches the root).
    fn attached(&self, arena: &DagArena, n: NodeId) -> bool {
        attached_in(arena, &mut self.spans.borrow_mut(), n)
    }

    /// How many attached sites reference `sym`.
    fn attached_refs(&self, arena: &DagArena, sym: Sym) -> usize {
        self.refs.get(&sym).map_or(0, |v| {
            v.iter().filter(|&&n| self.attached(arena, n)).count()
        })
    }

    // ------------------------------------------------------------------
    // Position-aware lookup
    // ------------------------------------------------------------------

    /// Innermost visible binding of `sym` at position `at` (see
    /// [`lookup_in`]).
    fn lookup(&self, arena: &DagArena, at: NodeId, sym: Sym, scope: CtrId) -> Option<NameKind> {
        lookup_in(
            arena,
            &mut self.spans.borrow_mut(),
            &self.contours,
            self.mode,
            at,
            sym,
            scope,
        )
    }

    // ------------------------------------------------------------------
    // Retraction
    // ------------------------------------------------------------------

    /// Saves the pre-update entries of `(scope, sym)` the first time the
    /// update touches them (the cut-off baseline).
    fn touch(&mut self, scope: CtrId, sym: Sym) {
        if self.mode == Mode::Build {
            return;
        }
        self.pre.entry((scope, sym)).or_insert_with(|| {
            self.contours[scope.index()]
                .entries
                .get(&sym)
                .cloned()
                .unwrap_or_default()
        });
    }

    fn remove_bind(&mut self, site: NodeId) {
        if let Some(old) = self.binds.remove(&site) {
            self.touch(old.scope, old.sym);
            if let Some(v) = self.contours[old.scope.index()].entries.get_mut(&old.sym) {
                v.retain(|e| e.site != site);
            }
        }
    }

    fn remove_use(&mut self, n: NodeId) {
        if let Some(old) = self.uses.remove(&n) {
            if let Some(v) = self.refs.get_mut(&old.sym) {
                if let Some(i) = v.iter().position(|&u| u == n) {
                    v.swap_remove(i);
                }
            }
        }
    }

    /// Removes the choice fact only; the caller decides what happens to
    /// the subtree below it.
    fn remove_choice_fact(&mut self, n: NodeId) -> Option<ChoiceFact> {
        let old = self.choices.remove(&n)?;
        if let Some(h) = old.head {
            if let Some(v) = self.deps.get_mut(&h) {
                if let Some(i) = v.iter().position(|&c| c == n) {
                    v.swap_remove(i);
                }
            }
        }
        Some(old)
    }

    /// Retracts the facts owned by one damaged node. A damaged choice
    /// point also retracts its whole subtree: its stale selection no
    /// longer says which alternative the old facts lived under.
    fn retract_node(&mut self, arena: &DagArena, n: NodeId) {
        self.remove_bind(n);
        self.remove_use(n);
        if self.choices.contains_key(&n) {
            self.retract_subtree(arena, n);
        }
    }

    /// Retracts every fact under `n` (inclusive).
    fn retract_subtree(&mut self, arena: &DagArena, n: NodeId) {
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            self.remove_bind(cur);
            self.remove_use(cur);
            self.remove_choice_fact(cur);
            self.stamps.remove(&cur);
            stack.extend_from_slice(arena.kids(cur));
        }
    }

    /// Drops facts about arena slots freed by the collector before their
    /// ids are recycled. Unreachable fact owners were already retracted
    /// when their region was damaged, so this mostly clears stale stamps.
    ///
    /// A contour slot is recycled only when its block node is dead *and*
    /// nothing live still names it — a dead-node contour referenced by a
    /// reused interior's stamps is exactly the adoption case and must
    /// survive the collection.
    fn prune(&mut self, arena: &DagArena) {
        let dead: Vec<NodeId> = self
            .binds
            .keys()
            .chain(self.uses.keys())
            .chain(self.choices.keys())
            .filter(|&&n| !arena.is_live(n))
            .copied()
            .collect();
        for n in dead {
            self.remove_bind(n);
            self.remove_use(n);
            self.remove_choice_fact(n);
        }
        self.stamps.retain(|&n, _| arena.is_live(n));
        self.scope_of.retain(|&n, _| arena.is_live(n));

        let mut referenced: FxHashSet<CtrId> = self.stamps.values().copied().collect();
        referenced.extend(self.binds.values().map(|f| f.scope));
        referenced.extend(self.uses.values().map(|f| f.scope));
        referenced.extend(self.choices.values().map(|f| f.scope));
        referenced.extend(self.scope_of.values().copied());
        // A referenced contour keeps its whole enclosing chain.
        let mut stack: Vec<CtrId> = referenced.iter().copied().collect();
        while let Some(c) = stack.pop() {
            let p = self.contours[c.index()].parent;
            if referenced.insert(p) {
                stack.push(p);
            }
        }
        let freed: FxHashSet<CtrId> = self.ctr_free.iter().copied().collect();
        for i in 1..self.contours.len() {
            let ctr = CtrId(i as u32);
            if freed.contains(&ctr) || referenced.contains(&ctr) {
                continue;
            }
            if arena.is_live(self.contours[i].node) {
                continue;
            }
            self.contours[i].entries.clear();
            self.contours[i].node = NodeId::NONE;
            self.contours[i].parent = GLOBAL;
            self.ctr_free.push(ctr);
        }
    }

    // ------------------------------------------------------------------
    // The walk
    // ------------------------------------------------------------------

    fn full_build(&mut self, arena: &DagArena, root: NodeId) {
        self.contours.truncate(1);
        self.contours[0].entries.clear();
        self.ctr_free.clear();
        self.scope_of.clear();
        self.binds.clear();
        self.uses.clear();
        self.choices.clear();
        self.refs.clear();
        self.deps.clear();
        self.stamps.clear();
        self.pre.clear();
        self.mode = Mode::Build;
        self.walk(arena, root, GLOBAL, true);
        self.mode = Mode::Incremental;
        self.built = true;
    }

    /// Re-analyzes `n` under `scope`. `force` disables stamp skipping
    /// below this point (used when a scope's chain changed identity).
    fn walk(&mut self, arena: &DagArena, n: NodeId, scope: CtrId, force: bool) {
        match arena.kind(n) {
            NodeKind::Terminal { .. } | NodeKind::Bos | NodeKind::Eos => {}
            NodeKind::Root | NodeKind::Sequence { .. } | NodeKind::SeqRun { .. } => {
                for i in 0..arena.kids(n).len() {
                    let k = arena.kids(n)[i];
                    if !force && self.stamps.get(&k) == Some(&scope) {
                        self.stats.contours_reused += 1;
                        continue;
                    }
                    self.walk(arena, k, scope, force);
                    self.stamps.insert(k, scope);
                }
            }
            NodeKind::Symbol { .. } => self.derive_choice(arena, n, scope, force, true),
            NodeKind::Production { prod } => {
                self.stats.reanalyzed += 1;
                let shape = self.shapes[prod.index()];
                match shape {
                    Shape::TypedefDecl => {
                        self.remove_bind(n);
                        if let Some(name) = arena
                            .kids(n)
                            .get(2)
                            .and_then(|&k| head_identifier(arena, self.id, k))
                        {
                            self.add_bind(n, scope, name, NameKind::Type);
                        }
                    }
                    Shape::Funcdef => {
                        self.remove_bind(n);
                        if let Some(name) = arena
                            .kids(n)
                            .get(1)
                            .and_then(|&k| head_identifier(arena, self.id, k))
                        {
                            self.add_bind(n, scope, name, NameKind::Function);
                        }
                        if let Some(&blk) = arena.kids(n).last() {
                            self.walk(arena, blk, scope, force);
                        }
                    }
                    Shape::Block => {
                        let (ctr, relocated) = self.enter_block(arena, n, scope);
                        let force = force || relocated;
                        for i in 0..arena.kids(n).len() {
                            let k = arena.kids(n)[i];
                            self.walk(arena, k, ctr, force);
                        }
                    }
                    Shape::DeclInt => {
                        self.remove_bind(n);
                        if let Some(name) = arena
                            .kids(n)
                            .get(1)
                            .and_then(|&k| head_identifier(arena, self.id, k))
                        {
                            self.add_bind(n, scope, name, NameKind::Variable);
                        }
                        if let Some(&init) = arena.kids(n).get(3) {
                            self.walk(arena, init, scope, force);
                        }
                    }
                    Shape::DeclTyped => {
                        // Type use first, then the binding takes effect —
                        // anchored at the `decl_id` node so the type use
                        // does not see it.
                        if let Some(&ty) = arena.kids(n).first() {
                            self.walk(arena, ty, scope, force);
                        }
                        let dn = arena.kids(n).iter().copied().find(|&k| {
                            matches!(arena.kind(k), NodeKind::Production { prod }
                                if self.shapes[prod.index()] == Shape::DeclId)
                        });
                        if let Some(dn) = dn {
                            self.remove_bind(dn);
                            if let Some(name) = head_identifier(arena, self.id, dn) {
                                self.add_bind(dn, scope, name, NameKind::Variable);
                            }
                        }
                    }
                    Shape::IdUse => self.derive_use(arena, n, scope, false),
                    Shape::TypeId => self.derive_use(arena, n, scope, true),
                    Shape::DeclId => {}
                    Shape::Generic => {
                        for i in 0..arena.kids(n).len() {
                            let k = arena.kids(n)[i];
                            self.walk(arena, k, scope, force);
                        }
                    }
                }
            }
        }
    }

    /// Resolves a block node to its contour, opening (or adopting) one on
    /// first sight. Returns the contour and whether its enclosing chain
    /// changed — in which case the interior must be re-walked, since
    /// stamps cannot see a change of surroundings.
    fn enter_block(&mut self, arena: &DagArena, n: NodeId, scope: CtrId) -> (CtrId, bool) {
        if let Some(&ctr) = self.scope_of.get(&n) {
            let c = &mut self.contours[ctr.index()];
            if c.parent != scope {
                c.parent = scope;
                return (ctr, true);
            }
            return (ctr, false);
        }
        if let Some(ctr) = self.adoptable(arena, n) {
            // A re-reduced block: the node id is fresh but the interior
            // was reused and its stamps still name the old contour. Take
            // it over so the bindings — and the stamps — stay valid.
            let old_node = self.contours[ctr.index()].node;
            self.scope_of.remove(&old_node);
            self.scope_of.insert(n, ctr);
            let c = &mut self.contours[ctr.index()];
            c.node = n;
            if c.parent != scope {
                c.parent = scope;
                return (ctr, true);
            }
            return (ctr, false);
        }
        let ctr = self.alloc_contour(n, scope);
        self.scope_of.insert(n, ctr);
        (ctr, false)
    }

    /// Searches the reused interior of a freshly re-reduced block for the
    /// contour it was last analyzed under: any stamped element inside the
    /// `items` subtree names it. Bounded to [`ADOPT_PROBES`] probes.
    fn adoptable(&self, arena: &DagArena, n: NodeId) -> Option<CtrId> {
        let seq = arena
            .kids(n)
            .iter()
            .copied()
            .find(|&k| matches!(arena.kind(k), NodeKind::Sequence { .. }))?;
        let mut stack = vec![seq];
        let mut probes = 0usize;
        while let Some(cur) = stack.pop() {
            for &k in arena.kids(cur) {
                if let Some(&ctr) = self.stamps.get(&k) {
                    let owner = self.contours[ctr.index()].node;
                    if ctr != GLOBAL && (!arena.is_live(owner) || !Self::reachable(arena, owner)) {
                        return Some(ctr);
                    }
                    // The stamp names the global scope or a contour whose
                    // block is still in the tree (the element moved here
                    // from elsewhere) — not ours to take.
                    continue;
                }
                if matches!(
                    arena.kind(k),
                    NodeKind::Sequence { .. } | NodeKind::SeqRun { .. }
                ) {
                    stack.push(k);
                }
                probes += 1;
                if probes >= ADOPT_PROBES {
                    return None;
                }
            }
        }
        None
    }

    /// Whether `cur` is still attached to the current tree: each step up
    /// must be confirmed by the parent's kid list, ending at the root.
    /// Live parent pointers are refreshed every reparse, so a true chain
    /// exists iff the node is reachable.
    fn reachable(arena: &DagArena, mut cur: NodeId) -> bool {
        loop {
            let p = arena.node(cur).parent();
            if p.is_none() {
                return matches!(arena.kind(cur), NodeKind::Root);
            }
            if !arena.is_live(p) || !arena.kids(p).contains(&cur) {
                return false;
            }
            cur = p;
        }
    }

    /// Allocates a contour slot (recycling freed ones).
    fn alloc_contour(&mut self, node: NodeId, parent: CtrId) -> CtrId {
        if let Some(ctr) = self.ctr_free.pop() {
            let c = &mut self.contours[ctr.index()];
            c.node = node;
            c.parent = parent;
            c.entries.clear();
            ctr
        } else {
            self.contours.push(Contour {
                parent,
                node,
                entries: FxHashMap::default(),
            });
            CtrId((self.contours.len() - 1) as u32)
        }
    }

    fn add_bind(&mut self, site: NodeId, scope: CtrId, name: &str, kind: NameKind) {
        let sym = self.symtab.intern(name);
        self.touch(scope, sym);
        self.contours[scope.index()]
            .entries
            .entry(sym)
            .or_default()
            .push(BindEntry { site, kind });
        self.binds.insert(site, BindFact { scope, sym, kind });
    }

    fn derive_use(&mut self, arena: &DagArena, n: NodeId, scope: CtrId, is_type_ctx: bool) {
        self.remove_use(n);
        let Some(name) = head_identifier(arena, self.id, n) else {
            return;
        };
        let sym = self.symtab.intern(name);
        let found = self.lookup(arena, n, sym, scope);
        let resolved = if is_type_ctx {
            found == Some(NameKind::Type)
        } else {
            found.is_some()
        };
        self.uses.insert(
            n,
            UseFact {
                scope,
                sym,
                is_type_ctx,
                resolved,
            },
        );
        self.refs.entry(sym).or_default().push(n);
    }

    /// Figure 8c on one choice point: classify the alternatives, look the
    /// head up, store the selection. When re-evaluation changes which
    /// child is effective, the old child's facts are retracted and the new
    /// one analyzed — the in-place flip.
    fn derive_choice(
        &mut self,
        arena: &DagArena,
        n: NodeId,
        scope: CtrId,
        force: bool,
        rewalk_subtree: bool,
    ) {
        self.stats.reanalyzed += 1;
        let kids: Vec<NodeId> = arena.kids(n).to_vec();
        let kinds: Vec<AltKind> = kids
            .iter()
            .map(|&k| self.classifier.alt_kind(arena, k))
            .collect();
        let head = head_identifier(arena, self.id, n).map(|h| self.symtab.intern(h));
        let head_kind = head.and_then(|sym| self.lookup(arena, n, sym, scope));
        let mut persistent = false;
        let want = match head_kind {
            Some(NameKind::Type) => {
                if kinds.contains(&AltKind::Decl) {
                    Some(AltKind::Decl)
                } else {
                    Some(AltKind::Cast)
                }
            }
            Some(NameKind::Function) | Some(NameKind::Variable) => Some(AltKind::Call),
            None => match self.strictness {
                Strictness::DefaultToCall => Some(AltKind::Call),
                Strictness::RequireBinding => {
                    persistent = true;
                    None
                }
            },
        };
        let sel = want.and_then(|w| {
            let index = kinds
                .iter()
                .position(|k| *k == w)
                .or_else(|| kinds.iter().position(|k| *k != AltKind::Other))?;
            Some(Selection {
                index,
                kind: kinds[index],
            })
        });

        let old = self.remove_choice_fact(n);
        let old_eff = old.and_then(|o| kids.get(o.sel.map_or(0, |s| s.index)).copied());
        let new_eff = kids[sel.map_or(0, |s| s.index)];
        self.choices.insert(
            n,
            ChoiceFact {
                scope,
                head,
                sel,
                persistent,
            },
        );
        if let Some(h) = head {
            self.deps.entry(h).or_default().push(n);
        }
        let flipped = old.is_some() && old_eff != Some(new_eff);
        if flipped {
            if let Some(oe) = old_eff {
                self.retract_subtree(arena, oe);
            }
            self.stats.flips += 1;
        }
        if rewalk_subtree || flipped || old.is_none() {
            self.walk(arena, new_eff, scope, force || flipped);
        }
    }

    // ------------------------------------------------------------------
    // Ripple (the cut-off rule)
    // ------------------------------------------------------------------

    /// Propagates net contour changes to their dependents until quiescent.
    /// Returns `false` if the iteration guard trips (caller rebuilds).
    fn ripple(&mut self, arena: &DagArena) -> bool {
        for _round in 0.. {
            let baselines: Vec<((CtrId, Sym), Vec<BindEntry>)> = self.pre.drain().collect();
            let mut changed: FxHashSet<Sym> = FxHashSet::default();
            for ((scope, sym), old) in baselines {
                let cur = self.contours[scope.index()]
                    .entries
                    .get(&sym)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                if !Self::entries_equal(&old, cur) {
                    changed.insert(sym);
                }
            }
            if changed.is_empty() {
                return true;
            }
            if _round >= MAX_RIPPLE_ROUNDS {
                return false;
            }
            for sym in changed {
                let users: Vec<NodeId> = self.refs.get(&sym).cloned().unwrap_or_default();
                for u in users {
                    self.re_resolve_use(arena, u);
                }
                let dependents: Vec<NodeId> = self.deps.get(&sym).cloned().unwrap_or_default();
                for c in dependents {
                    if let Some(fact) = self.choices.get(&c).copied() {
                        self.derive_choice(arena, c, fact.scope, false, false);
                    }
                }
            }
        }
        unreachable!("loop only exits via return")
    }

    /// Unordered comparison: retract-then-readd of an identical binding
    /// must not propagate.
    fn entries_equal(a: &[BindEntry], b: &[BindEntry]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut sa: Vec<BindEntry> = a.to_vec();
        let mut sb: Vec<BindEntry> = b.to_vec();
        sa.sort_by_key(|e| (e.site.index(), e.kind as u8));
        sb.sort_by_key(|e| (e.site.index(), e.kind as u8));
        sa == sb
    }

    /// Builds (or reuses) the frozen read view of the current fact tables.
    /// Cached between updates: every snapshot published from the same
    /// analysis state shares one copy.
    fn view(&mut self) -> Arc<SemView> {
        if let Some(v) = &self.view {
            return Arc::clone(v);
        }
        let v = Arc::new(SemView {
            symtab: self.symtab.clone(),
            contours: self.contours.clone(),
            binds: self.binds.clone(),
            uses: self.uses.clone(),
            choices: self.choices.clone(),
            refs: self.refs.clone(),
            spans: Mutex::new(FxHashMap::default()),
        });
        self.view = Some(Arc::clone(&v));
        v
    }

    fn re_resolve_use(&mut self, arena: &DagArena, n: NodeId) {
        let Some(fact) = self.uses.get(&n).copied() else {
            return;
        };
        let found = self.lookup(arena, n, fact.sym, fact.scope);
        let resolved = if fact.is_type_ctx {
            found == Some(NameKind::Type)
        } else {
            found.is_some()
        };
        if resolved != fact.resolved {
            self.stats.reanalyzed += 1;
            if let Some(f) = self.uses.get_mut(&n) {
                f.resolved = resolved;
            }
        }
    }
}

// ----------------------------------------------------------------------
// Position-aware query kernel (shared by the live state and the view)
// ----------------------------------------------------------------------

/// Document span of `n` in terminal offsets: `(start, end)` where `start`
/// is the number of terminals yielded left of `n`'s subtree. `None` for
/// nodes detached from the tree of this dag version. Memoized in `memo` —
/// repeated visibility checks against the same binding sites are the hot
/// loop of both the ripple pass and position-filtered lookup.
fn span_in(
    dag: &dyn DagRead,
    memo: &mut FxHashMap<NodeId, Option<(u32, u32)>>,
    n: NodeId,
) -> Option<(u32, u32)> {
    if let Some(&hit) = memo.get(&n) {
        return hit;
    }
    let width = dag.width(n);
    let mut start = 0u32;
    let mut cur = n;
    let computed = loop {
        let p = dag.parent(cur);
        if p.is_none() {
            // Only the root legitimately has no parent; anything else
            // without one is a detached fragment.
            break matches!(dag.kind(cur), NodeKind::Root).then_some(());
        }
        if !dag.is_live(p) {
            break None;
        }
        let kids = dag.kids(p);
        if matches!(dag.kind(p), NodeKind::Symbol { .. }) {
            // A symbol node's kids are overlapping alternatives of the
            // same yield, not concatenated siblings.
            if !kids.contains(&cur) {
                break None;
            }
        } else {
            let mut found = false;
            for &k in kids {
                if k == cur {
                    found = true;
                    break;
                }
                start += dag.width(k);
            }
            if !found {
                break None; // stale parent pointer: detached.
            }
        }
        cur = p;
    };
    let result = computed.map(|()| (start, start + width));
    memo.insert(n, result);
    result
}

/// Whether `n` is attached to the tree of this dag version (live, and its
/// parent chain — kid-membership verified at every level — reaches the
/// root).
fn attached_in(
    dag: &dyn DagRead,
    memo: &mut FxHashMap<NodeId, Option<(u32, u32)>>,
    n: NodeId,
) -> bool {
    dag.is_live(n) && span_in(dag, memo, n).is_some()
}

/// Whether the binding anchored at `a` is visible at position `b`: `a`
/// precedes `b` in document order, or is an ancestor of `b` (a
/// declaration's own initializer sees the binding).
fn visible_in(
    dag: &dyn DagRead,
    memo: &mut FxHashMap<NodeId, Option<(u32, u32)>>,
    a: NodeId,
    b: NodeId,
) -> bool {
    if a == b {
        return true;
    }
    let (Some((a_s, a_e)), Some((b_s, b_e))) = (span_in(dag, memo, a), span_in(dag, memo, b))
    else {
        return false;
    };
    a_e <= b_s || (a_s <= b_s && a_e >= b_e)
}

/// Innermost visible binding of `sym` at position `at`, walking the
/// contour chain from `scope` outwards. In build mode the last entry
/// pushed is by construction the latest preceding one; incrementally the
/// entries are position-filtered against `at`.
fn lookup_in(
    dag: &dyn DagRead,
    memo: &mut FxHashMap<NodeId, Option<(u32, u32)>>,
    contours: &[Contour],
    mode: Mode,
    at: NodeId,
    sym: Sym,
    mut scope: CtrId,
) -> Option<NameKind> {
    loop {
        let c = &contours[scope.index()];
        if let Some(entries) = c.entries.get(&sym) {
            match mode {
                Mode::Build => {
                    if let Some(e) = entries.last() {
                        return Some(e.kind);
                    }
                }
                Mode::Incremental => {
                    // Latest visible binding = visible entry with the
                    // greatest start offset (an enclosing declaration
                    // starts no later than any earlier sibling's end).
                    let mut best: Option<(u32, NameKind)> = None;
                    for e in entries {
                        if !visible_in(dag, memo, e.site, at) {
                            continue;
                        }
                        let start = span_in(dag, memo, e.site).map_or(0, |(s, _)| s);
                        if best.is_none_or(|(b, _)| b <= start) {
                            best = Some((start, e.kind));
                        }
                    }
                    if let Some((_, kind)) = best {
                        return Some(kind);
                    }
                }
            }
        }
        if scope == GLOBAL {
            return None;
        }
        scope = c.parent;
    }
}

// ----------------------------------------------------------------------
// The published read view
// ----------------------------------------------------------------------

/// A frozen copy of [`SemState`]'s queryable fact tables, published behind
/// an `Arc` alongside a dag snapshot so reader threads answer name queries
/// without the session lock.
///
/// The tables are plain clones (no structural sharing with the live
/// state); the only interior mutability is the span memo, which is sound
/// to share across every snapshot the view serves: the view is dropped at
/// the start of each semantic update, and between updates the attached
/// tree's structure is identical in every published version (refused
/// reparse attempts roll their parent edits back and only leave detached
/// fresh terminals behind, which own no facts).
#[derive(Debug)]
struct SemView {
    symtab: SymTab,
    contours: Vec<Contour>,
    binds: FxHashMap<NodeId, BindFact>,
    uses: FxHashMap<NodeId, UseFact>,
    choices: FxHashMap<NodeId, ChoiceFact>,
    refs: FxHashMap<Sym, Vec<NodeId>>,
    /// Span memo, shared by all readers of this view (lock-protected; a
    /// poisoned lock is recovered, since every memoized value is a pure
    /// function of the frozen tree).
    spans: Mutex<FxHashMap<NodeId, Option<(u32, u32)>>>,
}

impl SemView {
    fn attached_refs(
        &self,
        dag: &dyn DagRead,
        memo: &mut FxHashMap<NodeId, Option<(u32, u32)>>,
        sym: Sym,
    ) -> usize {
        self.refs.get(&sym).map_or(0, |v| {
            v.iter().filter(|&&n| attached_in(dag, memo, n)).count()
        })
    }
}

impl SemReadView for SemView {
    fn info_at(&self, dag: &dyn DagRead, path: &[NodeId]) -> Option<SemInfo> {
        let mut memo = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let memo = &mut *memo;
        let ambiguous = path.iter().any(|n| self.choices.contains_key(n));
        let choice_resolved = path
            .iter()
            .rev()
            .find_map(|n| self.choices.get(n))
            .map(|c| c.sel.is_some());
        for n in path.iter().rev() {
            if let Some(u) = self.uses.get(n) {
                let found = lookup_in(
                    dag,
                    memo,
                    &self.contours,
                    Mode::Incremental,
                    *n,
                    u.sym,
                    u.scope,
                );
                return Some(SemInfo {
                    name: self.symtab.name(u.sym).to_string(),
                    kind: found.map(to_sem_kind),
                    ambiguous,
                    resolved: choice_resolved.unwrap_or(u.resolved),
                    uses: self.attached_refs(dag, memo, u.sym),
                });
            }
            if let Some(b) = self.binds.get(n) {
                return Some(SemInfo {
                    name: self.symtab.name(b.sym).to_string(),
                    kind: Some(to_sem_kind(b.kind)),
                    ambiguous,
                    resolved: choice_resolved.unwrap_or(true),
                    uses: self.attached_refs(dag, memo, b.sym),
                });
            }
        }
        // No analyzed identifier on the path; report the enclosing choice
        // point's head if there is one.
        let (n, c) = path
            .iter()
            .rev()
            .find_map(|n| self.choices.get(n).map(|c| (*n, c)))?;
        let sym = c.head?;
        let found = lookup_in(
            dag,
            memo,
            &self.contours,
            Mode::Incremental,
            n,
            sym,
            c.scope,
        );
        Some(SemInfo {
            name: self.symtab.name(sym).to_string(),
            kind: found.map(to_sem_kind),
            ambiguous,
            resolved: c.sel.is_some(),
            uses: self.attached_refs(dag, memo, sym),
        })
    }

    fn uses_of(&self, dag: &dyn DagRead, name: &str) -> Vec<NodeId> {
        let Some(sym) = self.symtab.get(name) else {
            return Vec::new();
        };
        let mut memo = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut v: Vec<NodeId> = self
            .refs
            .get(&sym)
            .map(|v| {
                v.iter()
                    .filter(|&&n| attached_in(dag, &mut memo, n))
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        v.sort_by_key(|n| n.index());
        v
    }
}

impl SemanticPass for SemState {
    fn update(
        &mut self,
        arena: &DagArena,
        root: NodeId,
        damage: &[NodeId],
        gc_ran: bool,
    ) -> SemUpdate {
        self.stats = SemUpdate::default();
        self.spans.borrow_mut().clear();
        // Facts are about to change: the next publish must freeze a fresh
        // view (readers holding the old Arc keep their version's answers).
        self.view = None;
        if !self.built {
            self.full_build(arena, root);
            return self.stats;
        }
        self.mode = Mode::Incremental;
        self.pre.clear();
        if gc_ran {
            self.prune(arena);
        }
        for &d in damage {
            if !arena.is_live(d) {
                continue;
            }
            self.stamps.remove(&d);
            self.retract_node(arena, d);
        }
        self.walk(arena, root, GLOBAL, false);
        if !self.ripple(arena) {
            self.full_build(arena, root);
            self.stats.full_rebuild = true;
        }
        self.stats
    }

    fn rebuild(&mut self, arena: &DagArena, root: NodeId) -> SemUpdate {
        // Grammar hot-swap: the whole tree was re-derived under a new
        // table, so node stamps, contours, and selections are meaningless.
        // Reset instead of rippling from (nonexistent) damage.
        self.stats = SemUpdate::default();
        self.spans.borrow_mut().clear();
        self.view = None;
        self.full_build(arena, root);
        self.stats.full_rebuild = true;
        self.stats
    }

    fn info_at(&self, arena: &DagArena, path: &[NodeId]) -> Option<SemInfo> {
        // The tree may have moved under us since the last update (edits
        // applied but not yet incorporated); don't trust memoized spans.
        self.spans.borrow_mut().clear();
        let ambiguous = path.iter().any(|n| self.choices.contains_key(n));
        let choice_resolved = path
            .iter()
            .rev()
            .find_map(|n| self.choices.get(n))
            .map(|c| c.sel.is_some());
        for n in path.iter().rev() {
            if let Some(u) = self.uses.get(n) {
                let found = self.lookup(arena, *n, u.sym, u.scope);
                return Some(SemInfo {
                    name: self.symtab.name(u.sym).to_string(),
                    kind: found.map(to_sem_kind),
                    ambiguous,
                    resolved: choice_resolved.unwrap_or(u.resolved),
                    uses: self.attached_refs(arena, u.sym),
                });
            }
            if let Some(b) = self.binds.get(n) {
                return Some(SemInfo {
                    name: self.symtab.name(b.sym).to_string(),
                    kind: Some(to_sem_kind(b.kind)),
                    ambiguous,
                    resolved: choice_resolved.unwrap_or(true),
                    uses: self.attached_refs(arena, b.sym),
                });
            }
        }
        // No analyzed identifier on the path; report the enclosing choice
        // point's head if there is one.
        let (n, c) = path
            .iter()
            .rev()
            .find_map(|n| self.choices.get(n).map(|c| (*n, c)))?;
        let sym = c.head?;
        let found = self.lookup(arena, n, sym, c.scope);
        Some(SemInfo {
            name: self.symtab.name(sym).to_string(),
            kind: found.map(to_sem_kind),
            ambiguous,
            resolved: c.sel.is_some(),
            uses: self.attached_refs(arena, sym),
        })
    }

    fn uses_of(&self, arena: &DagArena, name: &str) -> Vec<NodeId> {
        let Some(sym) = self.symtab.get(name) else {
            return Vec::new();
        };
        let mut v: Vec<NodeId> = self
            .refs
            .get(&sym)
            .map(|v| {
                v.iter()
                    .filter(|&&n| self.attached(arena, n))
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        v.sort_by_key(|n| n.index());
        v
    }

    fn read_view(&mut self) -> Option<Arc<dyn SemReadView>> {
        Some(self.view())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn to_sem_kind(k: NameKind) -> SemNameKind {
    match k {
        NameKind::Type => SemNameKind::Type,
        NameKind::Function => SemNameKind::Function,
        NameKind::Variable => SemNameKind::Variable,
    }
}

/// A comparable, deterministic summary of an analysis — the currency of
/// the differential tests (incremental [`SemState`] vs batch
/// [`crate::analyze`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemSnapshot {
    /// Typedefs bound.
    pub typedefs: usize,
    /// Function definitions bound.
    pub functions: usize,
    /// Variables bound.
    pub variables: usize,
    /// Identifier uses examined.
    pub uses: usize,
    /// Uses that resolved to a binding.
    pub resolved_uses: usize,
    /// `(choice node index, selected child, kind)`, sorted.
    pub selections: Vec<(usize, usize, AltKind)>,
    /// Persistently ambiguous choice points, sorted.
    pub persistent: Vec<usize>,
    /// Lexemes of unresolved uses, sorted (a multiset).
    pub unresolved: Vec<String>,
    /// `(name, sorted use-site indexes)`, sorted by name.
    pub references: Vec<(String, Vec<usize>)>,
}

impl SemSnapshot {
    /// The batch oracle's answer in the same shape.
    pub fn of_batch(a: &Analysis) -> SemSnapshot {
        let mut selections: Vec<(usize, usize, AltKind)> = a
            .selections_iter()
            .map(|(n, s)| (n.index(), s.index, s.kind))
            .collect();
        selections.sort_unstable();
        let mut persistent: Vec<usize> = a.persistent.iter().map(|n| n.index()).collect();
        persistent.sort_unstable();
        let mut unresolved = a.unresolved_names.clone();
        unresolved.sort_unstable();
        let mut references: Vec<(String, Vec<usize>)> = a
            .references
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(name, v)| {
                let mut sites: Vec<usize> = v.iter().map(|n| n.index()).collect();
                sites.sort_unstable();
                (name.clone(), sites)
            })
            .collect();
        references.sort_unstable();
        SemSnapshot {
            typedefs: a.typedefs,
            functions: a.functions,
            variables: a.variables,
            uses: a.uses,
            resolved_uses: a.resolved_uses,
            selections,
            persistent,
            unresolved,
            references,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use wg_core::Session;
    use wg_langs::simp_c;

    fn attach(s: &mut Session, strictness: Strictness) {
        let pass = SemState::new(s.config().grammar(), strictness);
        s.attach_semantics(Box::new(pass));
    }

    fn state(s: &Session) -> &SemState {
        s.semantics()
            .expect("semantics attached")
            .as_any()
            .downcast_ref::<SemState>()
            .expect("concrete pass is SemState")
    }

    fn assert_matches_batch(s: &Session) {
        let batch = analyze(
            s.arena(),
            s.root(),
            s.config().grammar(),
            Strictness::RequireBinding,
        );
        assert_eq!(
            state(s).snapshot(s.arena()),
            SemSnapshot::of_batch(&batch),
            "incremental state diverged from the batch oracle"
        );
    }

    #[test]
    fn initial_build_matches_batch() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(
            cfg,
            "typedef int t; int f() { int y; t (x); } f (y); w = 1;",
        )
        .unwrap();
        attach(&mut s, Strictness::RequireBinding);
        assert_matches_batch(&s);
        let st = state(&s);
        assert_eq!(st.resolved_choices(), 2);
        assert!(st.contour_count() >= 1, "function body opened a contour");
    }

    #[test]
    fn incremental_update_tracks_edits() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(cfg, "int a; a = a + 1; int b = a;").unwrap();
        attach(&mut s, Strictness::RequireBinding);
        let pos = s.text().rfind('a').unwrap();
        s.edit(pos, 1, "zz");
        let out = s.reparse().unwrap();
        assert!(out.incorporated);
        assert_matches_batch(&s);
        assert_eq!(
            state(&s).snapshot(s.arena()).unresolved,
            vec!["zz".to_string()]
        );
    }

    #[test]
    fn typedef_removal_flips_retained_alternative_in_place() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(cfg, "typedef int t; int t2; t (x);").unwrap();
        attach(&mut s, Strictness::DefaultToCall);
        let sym = s.ambiguities()[0];
        assert_eq!(state(&s).selection(sym).unwrap().kind, AltKind::Decl);

        s.edit(0, "typedef int t;".len(), "int t;");
        let out = s.reparse().unwrap();
        assert!(out.incorporated);
        assert!(
            out.report.sem_flips >= 1,
            "the selection must flip in place: {:?}",
            out.report
        );
        assert!(!out.report.sem_full_rebuild);
        assert_eq!(state(&s).selection(sym).unwrap().kind, AltKind::Call);
        let batch = analyze(
            s.arena(),
            s.root(),
            cfg.grammar(),
            Strictness::DefaultToCall,
        );
        assert_eq!(state(&s).snapshot(s.arena()), SemSnapshot::of_batch(&batch));
    }

    #[test]
    fn unrelated_edit_reuses_contours_and_cuts_off() {
        let cfg = Box::leak(Box::new(simp_c()));
        let src = "typedef int t; int f() { int u1; } t (x); int q = 7; int r = 8;";
        let mut s = Session::new(cfg, src).unwrap();
        attach(&mut s, Strictness::RequireBinding);
        let pos = s.text().find('7').unwrap();
        s.edit(pos, 1, "9");
        let out = s.reparse().unwrap();
        assert!(out.incorporated);
        assert!(
            out.report.sem_contours_reused > 0,
            "untouched items must be skipped: {:?}",
            out.report
        );
        assert_eq!(out.report.sem_flips, 0, "no binding changed, no ripple");
        assert_matches_batch(&s);
    }

    #[test]
    fn read_view_matches_live_queries_at_every_offset() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(
            cfg,
            "typedef int t; int f() { int y; t (x); } f (y); w = 1;",
        )
        .unwrap();
        attach(&mut s, Strictness::RequireBinding);
        let snap = s.publish();
        assert!(snap.has_semantics());
        for off in 0..s.text().len() {
            assert_eq!(
                snap.info_at(off),
                s.semantic_info_at(off),
                "snapshot diverged from the live session at offset {off}"
            );
        }
        assert_eq!(snap.uses_of("y"), s.semantic_uses_of("y"));
        assert_eq!(snap.uses_of("t"), s.semantic_uses_of("t"));
        assert_eq!(snap.uses_of("nope"), s.semantic_uses_of("nope"));
    }

    #[test]
    fn read_view_is_isolated_from_later_edits() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(cfg, "int v; v = v + 1;").unwrap();
        attach(&mut s, Strictness::RequireBinding);
        let snap = s.publish();
        let off = s.text().rfind('v').unwrap();
        let before = snap.info_at(off).expect("an identifier there");
        assert_eq!(before.name, "v");
        assert_eq!(before.uses, 2);

        // Rename the declaration; the live session re-resolves, the pinned
        // snapshot keeps answering with its version's facts.
        s.edit(4, 1, "w");
        let out = s.reparse().unwrap();
        assert!(out.incorporated);
        let live = s.semantic_info_at(s.text().rfind('v').unwrap()).unwrap();
        assert_eq!(live.kind, None, "live: `v` is now unbound");
        let frozen = snap.info_at(off).expect("still an identifier there");
        assert_eq!(frozen.name, "v");
        assert_eq!(
            frozen.kind,
            Some(wg_core::SemNameKind::Variable),
            "frozen: the old binding is still visible"
        );
        assert_eq!(frozen.uses, 2);
        assert_eq!(snap.uses_of("v").len(), 2);

        // A fresh publish reflects the new facts.
        let snap2 = s.publish();
        assert!(snap2.version() > snap.version());
        assert_eq!(snap2.info_at(off).unwrap().kind, None);
    }

    #[test]
    fn queries_resolve_names_at_offsets() {
        let cfg = Box::leak(Box::new(simp_c()));
        let mut s = Session::new(cfg, "typedef int t; t (x); int v; v = v + 1;").unwrap();
        attach(&mut s, Strictness::RequireBinding);
        let off = s.text().rfind('v').unwrap();
        let info = s.semantic_info_at(off).expect("an identifier there");
        assert_eq!(info.name, "v");
        assert_eq!(info.kind, Some(wg_core::SemNameKind::Variable));
        assert!(!info.ambiguous);
        assert_eq!(info.uses, 2);
        assert_eq!(s.semantic_uses_of("v").len(), 2);
        // The ambiguous head:
        let toff = s.text().find("t (x)").unwrap();
        let tinfo = s.semantic_info_at(toff).expect("head identifier");
        assert_eq!(tinfo.name, "t");
        assert!(tinfo.ambiguous);
        assert!(tinfo.resolved);
    }
}
