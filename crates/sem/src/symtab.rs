//! Interned names: a per-session symbol table mapping identifier lexemes
//! to dense `u32` handles.
//!
//! The semantic pass compares, hashes, and indexes names constantly; doing
//! that on `String`s means a heap allocation per probe (the old
//! `head_identifier` cloned every head lexeme it looked at). Interning
//! makes the warm path allocation-free: probing an already-seen name is a
//! borrow-only hash lookup, and every downstream table keys on the `Copy`
//! [`Sym`] handle.

use wg_dag::FxHashMap;

/// An interned name (index into the session's [`SymTab`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// The intern table: lexeme → [`Sym`] with reverse lookup.
#[derive(Debug, Clone, Default)]
pub struct SymTab {
    map: FxHashMap<String, Sym>,
    names: Vec<String>,
}

impl SymTab {
    /// An empty table.
    pub fn new() -> SymTab {
        SymTab::default()
    }

    /// Interns `name`, allocating only the first time it is ever seen.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// The handle for `name` if it was ever interned. Allocation-free.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// The lexeme behind a handle.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }

    /// Distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no name was interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SymTab::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "alpha");
        assert_eq!(t.name(b), "beta");
        assert_eq!(t.get("alpha"), Some(a));
        assert_eq!(t.get("gamma"), None);
    }
}
