//! Semantic analysis and disambiguation for the simplified C/C++ languages
//! (Section 4 of the paper).
//!
//! The pipeline mirrors Figure 8:
//!
//! 1. **Typedef processing** — declarations are gathered into per-scope
//!    *binding contours* during a top-down walk ([`scope::ScopeStack`]).
//! 2. **Contour propagation** — each choice point's leading identifier is
//!    looked up in the contours visible at that point.
//! 3. **Disambiguation proper** — the namespace decision selects one child
//!    of each symbol node ([`Selection`]); the losing interpretation is
//!    *retained* (Section 4.2: semantic filters keep the unchosen child,
//!    because a later edit — e.g. removing a typedef — can reverse the
//!    decision without any parser involvement).
//! 4. **Remaining passes** — name resolution over the embedded tree,
//!    reporting unresolved uses.
//!
//! Program errors (an ambiguous construct whose head is unbound) leave the
//! choice point unresolved — the paper's *persistent ambiguity*
//! (Section 4.3): tools that do not need the answer keep working, and a
//! future edit can still resolve it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scope;
pub mod symtab;

mod analyze;
mod classify;
mod filters;
mod state;

pub use analyze::{analyze, AltKind, Analysis, Selection, Strictness};
pub use filters::{apply_syntactic_filter, SyntacticFilter};
pub use state::{SemSnapshot, SemState};
