//! Differential oracle for the incremental semantic pass.
//!
//! Random edit scripts — identifier renames, typedef insertion, removal,
//! and renames, and new ambiguous statements — run against a live
//! [`SemState`] attached to a session. After every incorporated reparse
//! the incremental state must equal what batch [`analyze`] computes from
//! scratch on the same tree. A long self-cancelling soak additionally
//! checks that contour slots do not leak: the count stays bounded by the
//! number of live blocks.

use proptest::prelude::*;
use wg_core::Session;
use wg_langs::generate::{c_program, edit_sites, identifier_sites, GenSpec};
use wg_langs::simp_c;
use wg_sem::{analyze, SemSnapshot, SemState, Strictness};

fn attach(s: &mut Session) {
    let pass = SemState::new(s.config().grammar(), Strictness::RequireBinding);
    s.attach_semantics(Box::new(pass));
}

fn state(s: &Session) -> &SemState {
    s.semantics()
        .expect("semantics attached")
        .as_any()
        .downcast_ref::<SemState>()
        .expect("concrete pass is SemState")
}

fn assert_matches_batch(s: &Session, context: &str) {
    let batch = analyze(
        s.arena(),
        s.root(),
        s.config().grammar(),
        Strictness::RequireBinding,
    );
    assert_eq!(
        state(s).snapshot(s.arena()),
        SemSnapshot::of_batch(&batch),
        "incremental state diverged from the batch oracle after {context}\ntext:\n{}",
        s.text()
    );
}

/// One step of an edit script, interpreted against the current text.
#[derive(Debug, Clone)]
enum Op {
    /// Replace the `n`-th identifier occurrence with a fresh name.
    Rename(usize),
    /// Replace the `n`-th identifier occurrence with a typedef'd name (if
    /// one exists), turning a plain use into a type-name use.
    RenameToType(usize),
    /// Insert a `typedef int …;` declaration at the `n`-th line boundary.
    AddTypedef(usize),
    /// Delete the `n`-th `typedef … ;` declaration outright.
    RemoveTypedef(usize),
    /// Rename the name *introduced by* the `n`-th typedef declaration,
    /// stranding its old uses and capturing any uses of the new name.
    RenameTypedef(usize),
    /// Insert an ambiguous `head (obj);` statement whose head is the
    /// `n`-th typedef'd name (declaration reading) or a fresh one (call).
    AddAmbiguous(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..256).prop_map(Op::Rename),
        (0usize..256).prop_map(Op::RenameToType),
        (0usize..256).prop_map(Op::AddTypedef),
        (0usize..256).prop_map(Op::RemoveTypedef),
        (0usize..256).prop_map(Op::RenameTypedef),
        (0usize..256).prop_map(Op::AddAmbiguous),
    ]
}

/// Byte ranges of whole `typedef … ;` declarations in `text`.
fn typedef_decls(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = text[from..].find("typedef") {
        let start = from + i;
        let Some(j) = text[start..].find(';') else {
            break;
        };
        out.push((start, j + 1));
        from = start + j + 1;
    }
    out
}

/// The name bound by the typedef declaration at `text[start..start+len]`.
fn typedef_name(text: &str, start: usize, len: usize) -> (usize, usize) {
    let decl = &text[start..start + len];
    let inner = decl["typedef".len()..].trim_start();
    let off = decl.len() - inner.len();
    let inner = inner["int".len()..].trim_start();
    let off = off + (decl.len() - off - inner.len()) - "typedef".len();
    let name_len = inner
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(inner.len());
    (start + "typedef".len() + off, name_len)
}

/// Applies `op` to the session's current text; returns a description of
/// what happened, or `None` if the op had no target (skipped).
fn apply_op(s: &mut Session, op: &Op, serial: usize) -> Option<String> {
    let text = s.text().to_string();
    let (start, len, repl) = match op {
        Op::Rename(n) => {
            let sites = identifier_sites(&text);
            let (start, len) = *sites.get(n % sites.len().max(1))?;
            (start, len, format!("q{serial}"))
        }
        Op::RenameToType(n) => {
            let decls = typedef_decls(&text);
            let (ds, dl) = *decls.get(n % decls.len().max(1))?;
            let (ns, nl) = typedef_name(&text, ds, dl);
            let tname = text[ns..ns + nl].to_string();
            let sites = identifier_sites(&text);
            let (start, len) = *sites.get(n % sites.len().max(1))?;
            (start, len, tname)
        }
        Op::AddTypedef(n) => {
            let bounds: Vec<usize> = text
                .char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1)
                .collect();
            let at = *bounds.get(n % bounds.len().max(1))?;
            (at, 0, format!("typedef int td{serial};\n"))
        }
        Op::RemoveTypedef(n) => {
            let decls = typedef_decls(&text);
            let (start, len) = *decls.get(n % decls.len().max(1))?;
            (start, len, String::new())
        }
        Op::RenameTypedef(n) => {
            let decls = typedef_decls(&text);
            let (ds, dl) = *decls.get(n % decls.len().max(1))?;
            let (start, len) = typedef_name(&text, ds, dl);
            (start, len, format!("td{serial}"))
        }
        Op::AddAmbiguous(n) => {
            let decls = typedef_decls(&text);
            let head = decls
                .get(n % decls.len().max(1))
                .map(|&(ds, dl)| {
                    let (ns, nl) = typedef_name(&text, ds, dl);
                    text[ns..ns + nl].to_string()
                })
                .unwrap_or_else(|| format!("fr{serial}"));
            let bounds: Vec<usize> = text
                .char_indices()
                .filter(|&(_, c)| c == '\n')
                .map(|(i, _)| i + 1)
                .collect();
            let at = *bounds.get(n % bounds.len().max(1))?;
            (at, 0, format!("{head} (obj{serial});\n"))
        }
    };
    s.edit(start, len, &repl);
    Some(format!("{op:?} at {start}..{} -> {repl:?}", start + len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every step of a random edit script the incremental state
    /// equals a from-scratch batch analysis of the same tree.
    #[test]
    fn edit_scripts_match_batch_oracle(
        seed in 0u64..512,
        lines in 12usize..48,
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let cfg = simp_c();
        let program = c_program(&GenSpec {
            typedef_rate: 0.1,
            ..GenSpec::sized(lines, 0.25, seed)
        });
        let mut s = Session::new(&cfg, &program.text).unwrap();
        attach(&mut s);
        assert_matches_batch(&s, "the initial build");
        for (i, op) in ops.iter().enumerate() {
            let Some(desc) = apply_op(&mut s, op, i) else {
                continue;
            };
            let out = s.reparse().unwrap();
            prop_assert!(out.incorporated, "edit not incorporated: {desc}");
            assert_matches_batch(&s, &desc);
        }
    }
}

/// 10k-edit soak: self-cancelling rename pairs with periodic typedef
/// add/remove churn. The incremental state must stay equal to the batch
/// oracle and the contour table must not leak slots — its size stays
/// bounded by the number of live blocks (plus slack for slots that are
/// kept until the next garbage collection lets them be pruned).
#[test]
fn soak_contours_bounded_by_live_blocks() {
    let cfg = simp_c();
    let program = c_program(&GenSpec {
        typedef_rate: 0.05,
        funcdef_rate: 0.1,
        ..GenSpec::sized(150, 0.2, 11)
    });
    let mut s = Session::new(&cfg, &program.text).unwrap();
    attach(&mut s);
    let sites = edit_sites(&program.text, 64, 23);
    let typedef_at = program.text.find('\n').unwrap() + 1;

    let mut edits = 0usize;
    let mut pair = 0usize;
    while edits < 10_000 {
        if pair % 16 == 15 {
            // Typedef churn: add one after the include line, then remove it.
            let decl = format!("typedef int soak{pair};\n");
            s.edit(typedef_at, 0, &decl);
            assert!(s.reparse().unwrap().incorporated);
            s.edit(typedef_at, decl.len(), "");
            assert!(s.reparse().unwrap().incorporated);
        } else {
            // Self-cancelling rename: the text returns to the original
            // after each pair, so the precomputed sites stay valid.
            let (start, len) = sites[pair % sites.len()];
            let original = s.text()[start..start + len].to_string();
            s.edit(start, len, "qq");
            assert!(s.reparse().unwrap().incorporated);
            s.edit(start, 2, &original);
            assert!(s.reparse().unwrap().incorporated);
        }
        edits += 2;
        pair += 1;
        if edits.is_multiple_of(2_000) {
            assert_matches_batch(&s, &format!("{edits} soak edits"));
        }
    }
    assert_matches_batch(&s, "the full soak");

    let live_blocks = s.text().matches('{').count();
    let contours = state(&s).contour_count();
    assert!(
        contours <= live_blocks + 64,
        "contour table leaked: {contours} contours for {live_blocks} live blocks"
    );
}
